// Hand-compiled UOP automata for MSO tree properties.
//
// This is the library's stand-in for the non-elementary MSO -> automaton
// translation of [7] (see DESIGN.md §5): each automaton recognizes exactly
// the *rooted* trees whose underlying unrooted tree has the property, for at
// least one prover-chosen root (completeness) and for no rooted tree lacking
// it (soundness). Each entry carries an independent combinatorial oracle on
// the unrooted tree; tests exhaustively compare automaton and oracle on
// random and enumerated trees.
//
// The subtle design point (and why the paper roots its trees): acceptance
// must be root-monotone in the right way. For each automaton we document
// which roots accept.
#pragma once

#include <string>
#include <vector>

#include "src/automata/uop_automaton.hpp"
#include "src/graph/graph.hpp"

namespace lcert {

/// "The underlying tree is a path." Any root on the path works; soundness
/// holds for every root.
UOPAutomaton aut_path();

/// "The underlying tree is a star K_{1,m} (m >= 0)."
UOPAutomaton aut_star();

/// "The underlying tree is a caterpillar" (removing all leaves leaves a path
/// or nothing). Accepting roots: any spine vertex.
UOPAutomaton aut_caterpillar();

/// "Maximum degree <= d" (d >= 1). Accepting from any root.
UOPAutomaton aut_max_degree_le(std::size_t d);

/// "The tree has a perfect matching." Accepting from any root.
UOPAutomaton aut_perfect_matching();

/// "The tree has a perfect code" (an independent set dominating every vertex
/// exactly once, aka efficient dominating set). Accepting from any root.
UOPAutomaton aut_perfect_code();

/// "Some root sees height <= k", i.e. the unrooted tree has radius <= k.
UOPAutomaton aut_radius_le(std::size_t k);

/// "The independence number is at least c" (alpha(T) >= c, c >= 1). The MSO
/// form quantifies a set plus c element variables; the automaton tracks the
/// capped pair (best independent set containing the vertex, best avoiding it)
/// and its transitions couple two capped sums over the children — the most
/// demanding constraint shapes the unary-Presburger layer supports.
UOPAutomaton aut_independent_set_ge(std::size_t c);

/// "The number of leaves is at least c" — threshold counting; on rooted trees
/// a leaf is a childless vertex, so the root (if childless) also counts;
/// accepting roots: internal vertices (choose any non-leaf root; for n >= 3
/// one always exists, and n <= 2 is special-cased by an extra state).
UOPAutomaton aut_leaf_count_ge(std::size_t c);

/// How an automaton's good_roots depend on the tree — a cheap classification
/// the incremental prover uses to recompute the *first* good root after an
/// edit without materializing a Graph or calling good_roots (DESIGN.md §13).
/// kGeneric makes no promise: callers must materialize and call good_roots.
enum class RootPolicy {
  kGeneric,           // arbitrary function of the tree (e.g. centers)
  kAllVertices,       // good_roots == all vertices: first good root is 0
  kInternalVertices,  // degree >= 2 vertices, all vertices when n <= 2
};

/// Named automaton + independent oracle over the *unrooted* tree.
struct NamedAutomaton {
  std::string name;
  UOPAutomaton automaton;
  bool (*oracle)(const Graph& tree);
  /// Returns candidate roots guaranteeing completeness on yes-instances
  /// (usually all vertices; restricted for caterpillar/leaf-count).
  std::vector<Vertex> (*good_roots)(const Graph& tree);
  /// Must match good_roots (defaults to the no-promise classification, which
  /// is always sound — just slower for incremental callers).
  RootPolicy root_policy = RootPolicy::kGeneric;
};

std::vector<NamedAutomaton> standard_tree_automata();

}  // namespace lcert
