#include "src/automata/box_index.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace lcert {

namespace {

// Word budget per BoxIndex for all bitset tables (segments + ladders):
// 128k words == 1MB. A table that does not fit is simply not built; the
// cursor then filters on fewer coordinates (still a sound superset).
constexpr std::size_t kWordBudget = 131072;
// At most this many segment indexes feed a containment cursor; past the
// few most selective coordinates extra streams cost more than they prune.
constexpr std::size_t kMaxContainmentStreams = 4;
// Below this many boxes a direct ascending SoA scan beats building a
// cursor (the canonical DNF of most automata is 1-3 boxes per state; the
// filters only pay for themselves on post-cliff outliers). The scan visits
// candidates in the same ascending order, so the first-match contract is
// unaffected.
constexpr std::size_t kLinearScanCutoff = 16;

std::size_t segment_of(const std::vector<std::size_t>& breakpoints, std::size_t v) {
  // breakpoints[0] == 0 and v >= 0, so the upper_bound is never begin().
  return static_cast<std::size_t>(
             std::upper_bound(breakpoints.begin(), breakpoints.end(), v) -
             breakpoints.begin()) -
         1;
}

}  // namespace

std::size_t BoxIndex::Cursor::lowest_bit(std::uint64_t w) noexcept {
  return static_cast<std::size_t>(std::countr_zero(w));
}

BoxIndex::BoxIndex(std::vector<IntervalBox> boxes) : boxes_(std::move(boxes)) {
  if (boxes_.empty()) return;
  arity_ = boxes_.front().lo.size();
  for (const IntervalBox& b : boxes_)
    if (b.lo.size() != arity_ || b.hi.size() != arity_)
      throw std::invalid_argument("BoxIndex: mixed arity");
  build();
}

void BoxIndex::build() {
  const std::size_t n = boxes_.size();
  word_count_ = (n + 63) / 64;

  lo_.resize(n * arity_);
  hi_.resize(n * arity_);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t q = 0; q < arity_; ++q) {
      lo_[i * arity_ + q] = boxes_[i].lo[q];
      hi_[i * arity_ + q] = boxes_[i].hi[q];
    }

  all_.assign(word_count_, ~std::uint64_t{0});
  if (n % 64 != 0) all_.back() = (std::uint64_t{1} << (n % 64)) - 1;

  std::size_t words_left = kWordBudget;

  // --- Containment side -----------------------------------------------
  // Coordinates where every box agrees collapse to one scalar check; the
  // rest are scored by selectivity (expected fraction of boxes passing a
  // uniformly random segment — lower prunes harder) and the best few get
  // a segment table under the word budget.
  struct Scored {
    std::size_t coord;
    double score;
    std::vector<std::size_t> breakpoints;
  };
  std::vector<Scored> scored;
  for (std::size_t q = 0; q < arity_; ++q) {
    bool is_uniform = true;
    for (std::size_t i = 1; i < n && is_uniform; ++i)
      is_uniform = boxes_[i].lo[q] == boxes_[0].lo[q] &&
                   boxes_[i].hi[q] == boxes_[0].hi[q];
    if (is_uniform) {
      const std::size_t ulo = boxes_[0].lo[q];
      const std::size_t uhi = boxes_[0].hi[q];
      if (ulo > 0 || uhi != IntervalBox::kUnbounded)
        uniform_.push_back(UniformInterval{q, ulo, uhi});
      continue;
    }
    std::vector<std::size_t> bp;
    bp.reserve(2 * n + 1);
    bp.push_back(0);
    for (const IntervalBox& b : boxes_) {
      bp.push_back(b.lo[q]);
      if (b.hi[q] != IntervalBox::kUnbounded) bp.push_back(b.hi[q] + 1);
    }
    std::sort(bp.begin(), bp.end());
    bp.erase(std::unique(bp.begin(), bp.end()), bp.end());
    std::size_t covered = 0;
    for (const IntervalBox& b : boxes_) {
      const std::size_t first = segment_of(bp, b.lo[q]);
      const std::size_t last = b.hi[q] == IntervalBox::kUnbounded
                                   ? bp.size() - 1
                                   : segment_of(bp, b.hi[q]);
      covered += last - first + 1;
    }
    const double score =
        static_cast<double>(covered) / (static_cast<double>(bp.size()) * n);
    scored.push_back(Scored{q, score, std::move(bp)});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) { return a.score < b.score; });
  for (Scored& s : scored) {
    if (segments_.size() >= kMaxContainmentStreams) break;
    if (s.score >= 0.95) break;  // barely prunes; not worth a stream
    const std::size_t need = s.breakpoints.size() * word_count_;
    if (need > words_left) continue;
    words_left -= need;

    SegmentIndex seg;
    seg.coord = s.coord;
    seg.breakpoints = std::move(s.breakpoints);
    const std::size_t rows = seg.breakpoints.size();
    seg.bits.assign(rows * word_count_, 0);
    seg.full.assign(rows, 0);

    // Sweep: per breakpoint, start events set a box bit, end events
    // (hi + 1) clear it; each row is a snapshot of the active set.
    std::vector<std::vector<std::size_t>> starts(rows), ends(rows);
    for (std::size_t i = 0; i < n; ++i) {
      starts[segment_of(seg.breakpoints, boxes_[i].lo[seg.coord])].push_back(i);
      if (boxes_[i].hi[seg.coord] != IntervalBox::kUnbounded)
        ends[segment_of(seg.breakpoints, boxes_[i].hi[seg.coord] + 1)].push_back(i);
    }
    std::vector<std::uint64_t> active(word_count_, 0);
    std::size_t active_count = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      for (const std::size_t i : ends[r]) {
        active[i / 64] &= ~(std::uint64_t{1} << (i % 64));
        --active_count;
      }
      for (const std::size_t i : starts[r]) {
        active[i / 64] |= std::uint64_t{1} << (i % 64);
        ++active_count;
      }
      std::copy(active.begin(), active.end(), seg.bits.begin() + r * word_count_);
      seg.full[r] = active_count == n;
    }
    segments_.push_back(std::move(seg));
  }

  // --- Feasibility side -----------------------------------------------
  // Necessary conditions only: lo[q] <= supply[q] per coordinate and
  // sum(lo) <= child_count. Uniform lower bounds are scalar checks;
  // varying ones become cumulative ladders.
  std::vector<std::size_t> lo_sums(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t q = 0; q < arity_; ++q) lo_sums[i] += boxes_[i].lo[q];

  const auto build_ladder = [&](std::size_t coord,
                                const std::vector<std::size_t>& per_box) -> bool {
    LoLadder lad;
    lad.coord = coord;
    lad.values = per_box;
    std::sort(lad.values.begin(), lad.values.end());
    lad.values.erase(std::unique(lad.values.begin(), lad.values.end()),
                     lad.values.end());
    const std::size_t need = lad.values.size() * word_count_;
    if (need > words_left) return false;
    words_left -= need;
    lad.bits.assign(need, 0);
    // Cumulative rows: row r holds every box whose value is <= values[r].
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = static_cast<std::size_t>(
          std::lower_bound(lad.values.begin(), lad.values.end(), per_box[i]) -
          lad.values.begin());
      lad.bits[r * word_count_ + i / 64] |= std::uint64_t{1} << (i % 64);
    }
    for (std::size_t r = 1; r < lad.values.size(); ++r)
      for (std::size_t w = 0; w < word_count_; ++w)
        lad.bits[r * word_count_ + w] |= lad.bits[(r - 1) * word_count_ + w];
    ladders_.push_back(std::move(lad));
    return true;
  };

  std::vector<std::size_t> per_box(n);
  for (std::size_t q = 0; q < arity_; ++q) {
    bool lo_uniform = true;
    std::size_t max_lo = 0;
    for (std::size_t i = 0; i < n; ++i) {
      per_box[i] = boxes_[i].lo[q];
      max_lo = std::max(max_lo, per_box[i]);
      if (per_box[i] != boxes_[0].lo[q]) lo_uniform = false;
    }
    if (max_lo == 0) continue;  // lo <= supply always holds
    if (lo_uniform) {
      uniform_lo_.push_back(UniformLo{q, boxes_[0].lo[q]});
      continue;
    }
    if (ladders_.size() + 1 >= Cursor::kMaxStreams) continue;  // slot for sum ladder
    build_ladder(q, per_box);
  }
  bool sums_uniform = true;
  for (std::size_t i = 1; i < n && sums_uniform; ++i)
    sums_uniform = lo_sums[i] == lo_sums[0];
  if (sums_uniform) {
    has_uniform_lo_sum_ = true;
    uniform_lo_sum_ = lo_sums[0];
  } else {
    build_ladder(npos, lo_sums);
  }
}

BoxIndex::Cursor BoxIndex::containment_candidates(const std::size_t* counts,
                                                  std::size_t count_len) const {
  Cursor cur;
  // An empty index (unsatisfiable transition) has no inferable arity and
  // matches nothing regardless of the probe width.
  if (boxes_.empty()) return cur;
  if (count_len != arity_)
    throw std::invalid_argument("BoxIndex::containment_candidates: wrong arity");
  for (const UniformInterval& u : uniform_) {
    const std::size_t v = counts[u.coord];
    if (v < u.lo || (u.hi != IntervalBox::kUnbounded && v > u.hi)) return cur;
  }
  cur.word_count_ = word_count_;
  for (const SegmentIndex& seg : segments_) {
    const std::size_t r = segment_of(seg.breakpoints, counts[seg.coord]);
    if (seg.full[r]) continue;
    cur.streams_[cur.stream_count_++] = seg.bits.data() + r * word_count_;
  }
  if (cur.stream_count_ == 0) cur.streams_[cur.stream_count_++] = all_.data();
  return cur;
}

BoxIndex::Cursor BoxIndex::feasibility_candidates(const std::size_t* supply,
                                                  std::size_t child_count) const {
  Cursor cur;
  if (boxes_.empty()) return cur;
  for (const UniformLo& u : uniform_lo_)
    if (supply[u.coord] < u.lo) return cur;
  if (has_uniform_lo_sum_ && uniform_lo_sum_ > child_count) return cur;
  cur.word_count_ = word_count_;
  for (const LoLadder& lad : ladders_) {
    const std::size_t s = lad.coord == npos ? child_count : supply[lad.coord];
    if (s >= lad.values.back()) continue;  // every box passes this condition
    if (s < lad.values.front()) {          // no box passes
      cur.word_count_ = 0;
      cur.stream_count_ = 0;
      return cur;
    }
    const std::size_t r = static_cast<std::size_t>(
        std::upper_bound(lad.values.begin(), lad.values.end(), s) -
        lad.values.begin()) -
        1;
    cur.streams_[cur.stream_count_++] = lad.bits.data() + r * word_count_;
  }
  if (cur.stream_count_ == 0) cur.streams_[cur.stream_count_++] = all_.data();
  return cur;
}

BoxIndex::Hit BoxIndex::first_containing(const std::size_t* counts,
                                         std::size_t count_len) const {
  Hit hit;
  if (boxes_.size() <= kLinearScanCutoff) {
    if (!boxes_.empty() && count_len != arity_)
      throw std::invalid_argument("BoxIndex::first_containing: wrong arity");
    for (std::size_t i = 0; i < boxes_.size(); ++i) {
      ++hit.probes;
      if (contains_soa(i, counts)) {
        hit.index = i;
        return hit;
      }
    }
    return hit;
  }
  Cursor cur = containment_candidates(counts, count_len);
  for (std::size_t i = cur.next(); i != npos; i = cur.next()) {
    ++hit.probes;
    if (contains_soa(i, counts)) {
      hit.index = i;
      return hit;
    }
  }
  return hit;
}

BoxIndex::Hit BoxIndex::first_containing_linear(const std::size_t* counts,
                                                std::size_t count_len) const {
  Hit hit;
  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    ++hit.probes;
    if (boxes_[i].contains(counts, count_len)) {
      hit.index = i;
      return hit;
    }
  }
  return hit;
}

}  // namespace lcert
