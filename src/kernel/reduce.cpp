#include "src/kernel/reduce.hpp"

#include <map>
#include <stdexcept>

#include "src/treedepth/elimination.hpp"

namespace lcert {

namespace {

// Types of the *alive* restriction, bottom-up; dead vertices keep type 0
// entries that are never read.
std::vector<TypeId> alive_types(const Graph& g, const RootedTree& t,
                                const std::vector<bool>& alive, TypeInterner& interner) {
  std::vector<TypeId> type(t.size(), 0);
  const auto order = t.preorder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t v = *it;
    if (!alive[v]) continue;
    TypeDef d;
    d.ancestor_vector = ancestor_vector(g, t, static_cast<Vertex>(v));
    std::map<TypeId, std::size_t> counts;
    for (std::size_t c : t.children(v))
      if (alive[c]) ++counts[type[c]];
    for (const auto& [id, mult] : counts) d.children.emplace_back(id, mult);
    type[v] = interner.intern(std::move(d));
  }
  return type;
}

}  // namespace

Kernelization k_reduce(const Graph& g, const RootedTree& t, std::size_t k) {
  if (k == 0) throw std::invalid_argument("k_reduce: k must be >= 1");
  if (!is_coherent_model(g, t))
    throw std::invalid_argument("k_reduce: model must be coherent");
  const std::size_t n = g.vertex_count();

  Kernelization out;
  out.in_kernel.assign(n, true);
  out.pruned.assign(n, false);
  out.end_type.assign(n, 0);

  // Deepest-first pruning, batched by level: prunings at the same depth are
  // independent (each only changes the types of *shallower* vertices), so one
  // type computation per level suffices — O(t * n log n) overall instead of
  // O(#prunings * n).
  std::vector<bool> alive(n, true);
  std::size_t max_depth = 0;
  for (std::size_t v = 0; v < n; ++v) max_depth = std::max(max_depth, t.depth(v));
  for (std::size_t level = max_depth + 1; level-- > 0;) {
    const auto type = alive_types(g, t, alive, out.interner);
    for (std::size_t u = 0; u < n; ++u) {
      if (!alive[u] || t.depth(u) != level) continue;
      std::map<TypeId, std::size_t> counts;
      for (std::size_t c : t.children(u))
        if (alive[c]) ++counts[type[c]];
      for (const auto& [victim_type, mult] : counts) {
        if (mult <= k) continue;
        std::size_t to_remove = mult - k;
        for (std::size_t c : t.children(u)) {
          if (to_remove == 0) break;
          if (!alive[c] || type[c] != victim_type) continue;
          out.pruned[c] = true;
          for (std::size_t x : t.subtree(c)) {
            if (!alive[x]) continue;
            alive[x] = false;
            out.end_type[x] = type[x];
          }
          ++out.pruning_operations;
          --to_remove;
        }
      }
    }
  }
  // Freeze the survivors' end types.
  {
    const auto type = alive_types(g, t, alive, out.interner);
    for (std::size_t v = 0; v < n; ++v)
      if (alive[v]) out.end_type[v] = type[v];
  }

  // Assemble the kernel as an induced subgraph plus the restricted model.
  for (Vertex v = 0; v < n; ++v) {
    out.in_kernel[v] = alive[v];
    if (alive[v]) out.kept.push_back(v);
  }
  out.kernel = g.induced(out.kept);
  std::vector<std::size_t> new_index(n, SIZE_MAX);
  for (std::size_t i = 0; i < out.kept.size(); ++i) new_index[out.kept[i]] = i;
  std::vector<std::size_t> parent(out.kept.size(), RootedTree::kNoParent);
  for (std::size_t i = 0; i < out.kept.size(); ++i) {
    const std::size_t p = t.parent(out.kept[i]);
    if (p != RootedTree::kNoParent) parent[i] = new_index[p];  // parents survive pruning
  }
  out.kernel_model = RootedTree(std::move(parent));
  return out;
}

}  // namespace lcert
