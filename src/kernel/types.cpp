#include "src/kernel/types.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace lcert {

TypeId TypeInterner::intern(TypeDef def) {
  std::sort(def.children.begin(), def.children.end());
  if (auto it = index_.find(def); it != index_.end()) return it->second;
  const TypeId id = defs_.size();
  defs_.push_back(def);
  index_.emplace(std::move(def), id);
  return id;
}

void TypeInterner::serialize(TypeId id, BitWriter& w) const {
  const TypeDef& d = def(id);
  w.write_varnat(d.ancestor_vector.size());
  for (bool bit : d.ancestor_vector) w.write_bit(bit);
  w.write_varnat(d.children.size());
  for (const auto& [child, mult] : d.children) {
    w.write_varnat(mult);
    serialize(child, w);
  }
}

namespace {

std::optional<TypeId> deserialize_rec(TypeInterner& interner, BitReader& r,
                                      std::size_t& budget) {
  if (budget == 0) return std::nullopt;
  --budget;
  TypeDef d;
  const std::uint64_t anc_len = r.read_varnat();
  if (anc_len > 4096) return std::nullopt;
  d.ancestor_vector.resize(anc_len);
  for (std::size_t i = 0; i < anc_len; ++i) d.ancestor_vector[i] = r.read_bit();
  const std::uint64_t child_count = r.read_varnat();
  if (child_count > 4096) return std::nullopt;
  for (std::size_t i = 0; i < child_count; ++i) {
    const std::uint64_t mult = r.read_varnat();
    if (mult == 0 || mult > 4096) return std::nullopt;
    const auto child = deserialize_rec(interner, r, budget);
    if (!child.has_value()) return std::nullopt;
    d.children.emplace_back(*child, mult);
  }
  // Reject duplicate child types: the canonical form merges them, and
  // accepting both encodings would let a cheating prover present the same
  // type two ways.
  auto sorted = d.children;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i)
    if (sorted[i].first == sorted[i - 1].first) return std::nullopt;
  return interner.intern(std::move(d));
}

}  // namespace

std::optional<TypeId> TypeInterner::deserialize(BitReader& r, std::size_t max_nodes) {
  std::size_t budget = max_nodes;
  try {
    return deserialize_rec(*this, r, budget);
  } catch (const std::out_of_range&) {
    return std::nullopt;  // truncated stream
  }
}

std::size_t TypeInterner::expanded_size(TypeId id) const {
  const TypeDef& d = def(id);
  std::size_t total = 1;
  for (const auto& [child, mult] : d.children) total += mult * expanded_size(child);
  return total;
}

std::string TypeInterner::to_string(TypeId id) const {
  const TypeDef& d = def(id);
  std::ostringstream os;
  os << "[";
  for (bool b : d.ancestor_vector) os << (b ? '1' : '0');
  os << "](";
  bool first = true;
  for (const auto& [child, mult] : d.children) {
    if (!first) os << ",";
    first = false;
    os << mult << "x" << to_string(child);
  }
  os << ")";
  return os.str();
}

std::vector<bool> ancestor_vector(const Graph& g, const RootedTree& t, Vertex v) {
  const auto anc = t.ancestors(v);  // v first, root last
  const std::size_t depth = t.depth(v);
  std::vector<bool> out(depth, false);
  // anc[i] is the ancestor at depth (depth - i); entry j of the vector refers
  // to the ancestor at depth j, i.e. anc[depth - j].
  for (std::size_t j = 0; j < depth; ++j) out[j] = g.has_edge(v, anc[depth - j]);
  return out;
}

std::vector<TypeId> compute_types(const Graph& g, const RootedTree& t, TypeInterner& interner) {
  std::vector<TypeId> type(t.size());
  const auto order = t.preorder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t v = *it;
    TypeDef d;
    d.ancestor_vector = ancestor_vector(g, t, static_cast<Vertex>(v));
    std::map<TypeId, std::size_t> counts;
    for (std::size_t c : t.children(v)) ++counts[type[c]];
    for (const auto& [id, mult] : counts) d.children.emplace_back(id, mult);
    type[v] = interner.intern(std::move(d));
  }
  return type;
}

namespace {

void expand_type(const TypeInterner& interner, TypeId id, std::size_t parent,
                 std::vector<std::size_t>& parents, std::vector<TypeId>& node_type) {
  const std::size_t me = parents.size();
  parents.push_back(parent);
  node_type.push_back(id);
  for (const auto& [child, mult] : interner.def(id).children)
    for (std::size_t i = 0; i < mult; ++i)
      expand_type(interner, child, me, parents, node_type);
}

}  // namespace

Graph realize_type(const TypeInterner& interner, TypeId root_type) {
  if (!interner.def(root_type).ancestor_vector.empty())
    throw std::invalid_argument("realize_type: root type must have an empty ancestor vector");
  std::vector<std::size_t> parents;
  std::vector<TypeId> node_type;
  expand_type(interner, root_type, RootedTree::kNoParent, parents, node_type);
  const RootedTree t(parents);

  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t v = 0; v < t.size(); ++v) {
    const auto& vec = interner.def(node_type[v]).ancestor_vector;
    if (vec.size() != t.depth(v))
      throw std::invalid_argument("realize_type: ancestor vector length mismatch");
    const auto anc = t.ancestors(v);  // v first, root last
    for (std::size_t j = 0; j < vec.size(); ++j)
      if (vec[j]) edges.emplace_back(v, anc[t.depth(v) - j]);
  }
  return Graph(t.size(), edges);
}

}  // namespace lcert
