// Vertex types for the kernelization (Section 6.1).
//
// Fix a coherent t-model T of G. The *ancestor vector* of a vertex v at depth
// i is the bit vector whose j-th coordinate says whether v is adjacent in G
// to its ancestor at depth j (j = 0..i-1). The *type* of v is its subtree in
// T with every node labeled by its ancestor vector — an unordered object, so
// we represent types canonically: a type is (ancestor vector, sorted multiset
// of children types) and types are hash-consed into integer TypeIds by a
// TypeInterner. Two vertices have equal TypeIds iff they have equal types.
//
// Types also serialize to a self-describing bit string (used by the
// Theorem 2.6 certificates, where the verifier has no shared interner); the
// serialized size depends only on (k, t) after reduction — Proposition 6.2.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/util/bitio.hpp"

namespace lcert {

using TypeId = std::size_t;

/// Canonical definition of a type.
struct TypeDef {
  std::vector<bool> ancestor_vector;
  /// Sorted (TypeId, multiplicity) pairs.
  std::vector<std::pair<TypeId, std::size_t>> children;

  bool operator<(const TypeDef& rhs) const {
    if (ancestor_vector != rhs.ancestor_vector) return ancestor_vector < rhs.ancestor_vector;
    return children < rhs.children;
  }
  bool operator==(const TypeDef& rhs) const = default;
};

/// Hash-consing table of types.
class TypeInterner {
 public:
  TypeId intern(TypeDef def);
  const TypeDef& def(TypeId id) const { return defs_.at(id); }
  std::size_t size() const noexcept { return defs_.size(); }

  /// Self-describing serialization (recursive; independent of the interner).
  void serialize(TypeId id, BitWriter& w) const;

  /// Deserializes into this interner; nullopt on malformed input or if the
  /// recursion exceeds `max_nodes` expanded type nodes (adversarial guard).
  std::optional<TypeId> deserialize(BitReader& r, std::size_t max_nodes = 1 << 20);

  /// Number of vertices of the tree a type describes (with multiplicities).
  std::size_t expanded_size(TypeId id) const;

  /// Human-readable rendering, for diagnostics.
  std::string to_string(TypeId id) const;

 private:
  std::map<TypeDef, TypeId> index_;
  std::vector<TypeDef> defs_;
};

/// Ancestor vector of v under model t (position j = adjacency to the ancestor
/// at depth j, for j = 0..depth(v)-1).
std::vector<bool> ancestor_vector(const Graph& g, const RootedTree& t, Vertex v);

/// Types of all vertices, bottom-up over the model.
std::vector<TypeId> compute_types(const Graph& g, const RootedTree& t, TypeInterner& interner);

/// Builds the graph a type describes: expand the type tree (each child type
/// with its multiplicity) and connect every node to the ancestors its vector
/// selects. Used by the Theorem 2.6 verifier to model-check the kernel.
Graph realize_type(const TypeInterner& interner, TypeId root_type);

}  // namespace lcert
