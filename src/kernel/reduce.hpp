// The k-reduced graph (kernel) of Section 6.1-6.2.
//
// A *valid pruning operation* removes the subtree of one child w of a vertex
// u that has more than k children of w's type; reductions always prune at a
// vertex of the largest possible depth, which makes *end types* well defined:
// the type a vertex has when it is deleted (or its final type if kept).
// Proposition 6.2 bounds the kernel size by a tower in (k, t); Proposition
// 6.3 (audited via EF games in the tests) gives G ≃_k kernel(G).
#pragma once

#include <cstddef>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/kernel/types.hpp"

namespace lcert {

struct Kernelization {
  /// The kernel H as a graph (vertex i of `kernel` is `kept[i]` in G).
  Graph kernel;
  std::vector<Vertex> kept;            ///< kernel index -> original vertex
  std::vector<bool> in_kernel;         ///< per original vertex
  std::vector<bool> pruned;            ///< v was the *root* of a pruned subtree
  std::vector<TypeId> end_type;        ///< per original vertex (see paper §6.1)
  RootedTree kernel_model;             ///< restriction of the model to H
  TypeInterner interner;               ///< owns every TypeId above
  std::size_t pruning_operations = 0;  ///< number of valid prunings applied
};

/// Computes a k-reduction of g with respect to the coherent model `t`.
/// Requires k >= 1.
Kernelization k_reduce(const Graph& g, const RootedTree& t, std::size_t k);

}  // namespace lcert
