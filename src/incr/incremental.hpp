// Dynamic certification layer (DESIGN.md §13).
//
// A CertifiedInstance is a live (graph, certificate assignment) pair under
// streaming GraphEdits: apply() mutates the instance and repairs the
// certificates, amortized O(dirty slice) per edit when the scheme ships an
// incremental prover (Scheme::make_incremental_prover), falling back to a
// cold full re-prove per edit otherwise — same results either way, the
// incremental path is a pure speedup (pinned by the kIncrementalDivergence
// fuzz oracle: certificates after every edit are bit-identical to a cold
// prove_assignment over the accumulated graph).
//
// The layer also owns the observability surface: per-edit counters
// (incr/edits, incr/full_reproves, incr/reproved_vertices,
// incr/reverified_vertices, incr/changed_certs) and the incr/dirty_path_len
// histogram feed the CLI `watch` subcommand and the incremental-smoke CI job.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "src/cert/options.hpp"
#include "src/cert/scheme.hpp"
#include "src/graph/edit.hpp"
#include "src/graph/graph.hpp"

namespace lcert::incr {

/// A certified instance under streaming edits. The scheme must outlive the
/// instance (the incremental prover may borrow from it).
class CertifiedInstance {
 public:
  explicit CertifiedInstance(const Scheme& scheme, const RunOptions& options = {});

  /// Certifies the initial instance; must be called before apply(). Returns
  /// the certificates (nullopt when the instance is not certifiable).
  const std::optional<std::vector<Certificate>>& init(const Graph& g);

  /// Applies one edit and repairs the certification. Throws
  /// std::invalid_argument on illegal edits (the instance is unchanged).
  IncrementalStats apply(const GraphEdit& edit);

  const std::optional<std::vector<Certificate>>& certificates() const;

  /// Vertices (post-edit indexing) whose certificates changed in the last
  /// apply(); meaningless when changed_all() is true.
  const std::vector<std::size_t>& changed_vertices() const;
  bool changed_all() const;

  /// The accumulated graph.
  Graph graph() const;

  /// True when edits run through a scheme-provided incremental prover;
  /// false when each apply() is a cold full re-prove.
  bool incremental() const noexcept { return prover_ != nullptr; }

 private:
  const Scheme& scheme_;
  RunOptions options_;
  std::unique_ptr<IncrementalProver> prover_;  ///< null => fallback mode

  // Fallback-mode state (unused when prover_ is set).
  std::optional<Graph> graph_;
  std::optional<std::vector<Certificate>> certs_;
  std::vector<std::size_t> changed_;
  bool changed_all_ = false;

  std::uint64_t edit_seq_ = 0;  ///< logical id of the next edit (trace events)
};

}  // namespace lcert::incr
