#include "src/incr/incremental.hpp"

#include <stdexcept>
#include <utility>

#include "src/cert/prove.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace lcert::incr {

namespace {

struct IncrMetrics {
  obs::Counter edits = obs::registry().counter("incr/edits");
  obs::Counter full_reproves = obs::registry().counter("incr/full_reproves");
  obs::Counter reproved = obs::registry().counter("incr/reproved_vertices");
  obs::Counter reverified = obs::registry().counter("incr/reverified_vertices");
  obs::Counter changed_certs = obs::registry().counter("incr/changed_certs");
  obs::Histogram dirty_path_len = obs::registry().histogram("incr/dirty_path_len");
  obs::Quantile edit_ns = obs::registry().quantile("incr/edit_ns");
  std::uint32_t trace_apply = obs::trace_sink().name_id("incr/apply");
};

const IncrMetrics& incr_metrics() {
  static const IncrMetrics metrics;
  return metrics;
}

// edit_seq is the deterministic logical id of the edit in its stream (edits
// apply serially per instance); ns is 0 when tracing was off for this edit.
void record(const IncrementalStats& st, const Scheme& scheme, std::uint64_t edit_seq,
            std::uint64_t ns) {
  const IncrMetrics& m = incr_metrics();
  m.edits.add();
  if (st.full_reprove) m.full_reproves.add();
  m.reproved.add(st.reproved_vertices);
  m.reverified.add(st.reverified_vertices);
  m.changed_certs.add(st.changed_certificates);
  m.dirty_path_len.record(st.dirty_path_len);
  if (ns != 0) {
    m.edit_ns.record(ns);
    obs::trace_sink().emit(m.trace_apply, obs::TraceEventKind::kInstant, edit_seq,
                           static_cast<std::int64_t>(st.dirty_path_len));
    if (obs::outliers().would_admit(ns)) {
      obs::OutlierRecord rec;
      rec.ns = ns;
      rec.site = "incr-edit";
      rec.scheme = scheme.name();
      rec.unit = edit_seq;
      rec.detail = "dirty_path_len=" + std::to_string(st.dirty_path_len) +
                   (st.full_reprove ? " full_reprove" : "") +
                   " reproved=" + std::to_string(st.reproved_vertices);
      obs::outliers().record(std::move(rec));
    }
  }
}

}  // namespace

CertifiedInstance::CertifiedInstance(const Scheme& scheme, const RunOptions& options)
    : scheme_(scheme), options_(options),
      prover_(scheme.make_incremental_prover(options)) {}

const std::optional<std::vector<Certificate>>& CertifiedInstance::init(const Graph& g) {
  if (prover_ != nullptr) return prover_->init(g);
  graph_ = g;
  certs_ = prove_assignment(scheme_, g, options_).certificates;
  changed_.clear();
  changed_all_ = true;
  return certs_;
}

IncrementalStats CertifiedInstance::apply(const GraphEdit& edit) {
  const bool tracing = obs::trace_enabled();
  const std::uint64_t edit_seq = edit_seq_++;
  if (prover_ != nullptr) {
    const std::uint64_t t0 = tracing ? obs::trace_now_ns() : 0;
    const IncrementalStats st = prover_->apply(edit);
    record(st, scheme_, edit_seq, tracing ? obs::trace_now_ns() - t0 : 0);
    return st;
  }

  // Fallback: no incremental prover — every edit is a cold full re-prove.
  if (!graph_.has_value())
    throw std::logic_error("CertifiedInstance::apply before init");
  const std::uint64_t t0 = tracing ? obs::trace_now_ns() : 0;
  Graph next = apply_edit(*graph_, edit);
  ProveResult res = prove_assignment(scheme_, next, options_);

  IncrementalStats st;
  st.full_reprove = true;
  st.certified = res.certificates.has_value();
  st.memo_hits = res.memo_hits;
  st.memo_misses = res.memo_misses;
  st.reproved_vertices = next.vertex_count();

  changed_.clear();
  if (!certs_.has_value() || !res.certificates.has_value() ||
      certs_->size() != res.certificates->size()) {
    changed_all_ = certs_.has_value() || res.certificates.has_value();
  } else {
    changed_all_ = false;
    for (std::size_t v = 0; v < certs_->size(); ++v)
      if ((*certs_)[v] != (*res.certificates)[v]) changed_.push_back(v);
  }
  if (st.certified) {
    const std::size_t n = next.vertex_count();
    st.changed_certificates = changed_all_ ? n : changed_.size();
    if (n > 0)
      st.reuse_ratio =
          1.0 - static_cast<double>(st.changed_certificates) / static_cast<double>(n);
  }
  certs_ = std::move(res.certificates);
  graph_ = std::move(next);
  record(st, scheme_, edit_seq, tracing ? obs::trace_now_ns() - t0 : 0);
  return st;
}

const std::optional<std::vector<Certificate>>& CertifiedInstance::certificates() const {
  return prover_ != nullptr ? prover_->certificates() : certs_;
}

const std::vector<std::size_t>& CertifiedInstance::changed_vertices() const {
  return prover_ != nullptr ? prover_->changed_vertices() : changed_;
}

bool CertifiedInstance::changed_all() const {
  return prover_ != nullptr ? prover_->changed_all() : changed_all_;
}

Graph CertifiedInstance::graph() const {
  if (prover_ != nullptr) return prover_->graph();
  if (!graph_.has_value())
    throw std::logic_error("CertifiedInstance::graph before init");
  return *graph_;
}

}  // namespace lcert::incr
