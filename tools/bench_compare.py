#!/usr/bin/env python3
"""Diff a fresh BENCH_*.json against a committed baseline; gate on regressions.

Compares the per-benchmark throughput maps (``items_per_second``) of two
artifacts produced by bench/run_*_bench.sh and fails when any shared metric
regressed beyond tolerance:

    tools/bench_compare.py --baseline BENCH_prove.json --current fresh.json \
        --tolerance 0.15 --tolerance-for 'BM_ProveBatchParallel/.*=0.30'

Exit codes:
    0  no metric regressed beyond its tolerance
    1  at least one regression (or the artifacts share no metrics)
    2  usage / unreadable artifact / schema-version mismatch

Rules:
  * A metric regresses when current < baseline * (1 - tolerance). Tolerance is
    a fraction (0.15 = 15% slower allowed); throughput metrics only, so lower
    is always worse. Improvements never fail, however large.
  * --tolerance-for PATTERN=FRACTION overrides the default for metric names
    matching the (fullmatch) regex; repeatable, first match wins, most
    specific first.
  * Both artifacts must carry the same "schema" version (missing = 1): a
    cross-schema diff silently compares renamed metrics, which is exactly the
    failure mode the schema field exists to catch. No force override here —
    regenerate the baseline instead.
  * Metrics present on only one side are reported but never fail the gate
    (smoke runs carry fewer rows than full sweeps); an *empty* intersection is
    an error, because a gate that compared nothing would pass vacuously.

The CI job runs this non-blocking (continue-on-error) against the committed
baseline: the committed artifact was produced on different hardware, so the
job is a trend signal, not a merge gate. The ctest fixtures under
tests/data/bench_compare/ pin the gate itself: a synthetic 2x slowdown must
exit 1, a within-tolerance run must exit 0.
"""

import argparse
import json
import re
import sys


def load_artifact(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def parse_override(spec):
    pattern, sep, frac = spec.rpartition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected PATTERN=FRACTION, got {spec!r}")
    try:
        value = float(frac)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad fraction in {spec!r}")
    try:
        compiled = re.compile(pattern)
    except re.error as e:
        raise argparse.ArgumentTypeError(f"bad pattern in {spec!r}: {e}")
    return compiled, value


def main():
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_*.json artifacts; exit 1 on regression.")
    parser.add_argument("--baseline", required=True,
                        help="committed reference artifact")
    parser.add_argument("--current", required=True,
                        help="freshly produced artifact")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="default allowed slowdown fraction (default 0.15)")
    parser.add_argument("--tolerance-for", type=parse_override, action="append",
                        default=[], metavar="PATTERN=FRACTION",
                        help="per-metric override, fullmatch regex on the "
                             "benchmark name; repeatable, first match wins")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    base = load_artifact(args.baseline)
    curr = load_artifact(args.current)

    base_schema = base.get("schema", 1)
    curr_schema = curr.get("schema", 1)
    if base_schema != curr_schema:
        print(f"bench_compare: schema mismatch — baseline {args.baseline} is "
              f"schema {base_schema}, current {args.current} is schema "
              f"{curr_schema}; regenerate the baseline", file=sys.stderr)
        sys.exit(2)

    base_rates = base.get("items_per_second", {})
    curr_rates = curr.get("items_per_second", {})
    shared = sorted(set(base_rates) & set(curr_rates))
    if not shared:
        print("bench_compare: artifacts share no items_per_second metrics — "
              "nothing to gate on", file=sys.stderr)
        sys.exit(1)

    def tolerance_of(name):
        for pattern, frac in args.tolerance_for:
            if pattern.fullmatch(name):
                return frac
        return args.tolerance

    regressions = []
    width = max(len(name) for name in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>7}  {'tol':>5}  verdict")
    for name in shared:
        b, c = base_rates[name], curr_rates[name]
        tol = tolerance_of(name)
        if not b or b <= 0:
            verdict = "skip (zero baseline)"
            ratio_s = "-"
        else:
            ratio = c / b
            ratio_s = f"{ratio:.3f}"
            if c < b * (1.0 - tol):
                verdict = "REGRESSED"
                regressions.append((name, ratio, tol))
            else:
                verdict = "ok"
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {ratio_s:>7}  "
              f"{tol:>5.2f}  {verdict}")

    only_base = sorted(set(base_rates) - set(curr_rates))
    only_curr = sorted(set(curr_rates) - set(base_rates))
    if only_base:
        print(f"note: {len(only_base)} metric(s) only in baseline "
              f"(e.g. {only_base[0]}) — not gated")
    if only_curr:
        print(f"note: {len(only_curr)} metric(s) only in current "
              f"(e.g. {only_curr[0]}) — not gated")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond tolerance:",
              file=sys.stderr)
        for name, ratio, tol in regressions:
            print(f"  {name}: {ratio:.3f}x of baseline "
                  f"(allowed >= {1.0 - tol:.2f}x)", file=sys.stderr)
        sys.exit(1)
    print(f"\nall {len(shared)} shared metric(s) within tolerance")
    sys.exit(0)


if __name__ == "__main__":
    main()
