#include <gtest/gtest.h>

#include "src/automata/library.hpp"
#include "src/automata/presburger.hpp"
#include "src/automata/uop_automaton.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/tree_iso.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

using UC = UnaryConstraint;

TEST(Presburger, AtomEvaluation) {
  const auto c = UC::le(0, 2) && UC::ge(1, 1);
  EXPECT_TRUE(c.eval({2, 1}));
  EXPECT_TRUE(c.eval({0, 5}));
  EXPECT_FALSE(c.eval({3, 1}));
  EXPECT_FALSE(c.eval({1, 0}));
}

TEST(Presburger, NegationAndDisjunction) {
  const auto c = !(UC::le(0, 1)) || UC::exactly(1, 0);
  EXPECT_TRUE(c.eval({2, 7}));   // left holds
  EXPECT_TRUE(c.eval({0, 0}));   // right holds
  EXPECT_FALSE(c.eval({1, 3}));  // neither
}

TEST(Presburger, ConstantsAndEmptyBoxes) {
  EXPECT_TRUE(UC::always_true().eval({1, 2, 3}));
  EXPECT_FALSE(UC::always_false().eval({}));
  EXPECT_TRUE(UC::always_false().to_boxes(2).empty());
  EXPECT_EQ(UC::always_true().to_boxes(2).size(), 1u);
  // Contradiction produces no boxes.
  EXPECT_TRUE((UC::le(0, 1) && UC::ge(0, 3)).to_boxes(1).empty());
}

TEST(Presburger, BoxesAgreeWithEvalExhaustively) {
  // Random constraints over 3 states, counts in [0,4]^3.
  Rng rng(55);
  for (int trial = 0; trial < 60; ++trial) {
    // Build a random constraint tree.
    std::vector<UC> pool;
    for (int i = 0; i < 4; ++i) {
      const std::size_t q = rng.index(3);
      const std::size_t b = rng.index(4);
      pool.push_back(rng.coin() ? UC::le(q, b) : UC::ge(q, b));
    }
    UC c = pool[0];
    for (std::size_t i = 1; i < pool.size(); ++i) {
      switch (rng.index(3)) {
        case 0: c = c && pool[i]; break;
        case 1: c = c || pool[i]; break;
        default: c = !c || pool[i]; break;
      }
    }
    const auto boxes = c.to_boxes(3);
    std::vector<std::size_t> counts(3);
    for (counts[0] = 0; counts[0] <= 4; ++counts[0])
      for (counts[1] = 0; counts[1] <= 4; ++counts[1])
        for (counts[2] = 0; counts[2] <= 4; ++counts[2]) {
          bool in_boxes = false;
          for (const auto& box : boxes) in_boxes = in_boxes || box.contains(counts);
          EXPECT_EQ(in_boxes, c.eval(counts)) << c.to_string();
        }
  }
}

TEST(IntervalBox, ContainsAndUnboundedEdges) {
  IntervalBox b(2);
  b.lo = {1, 0};
  b.hi = {3, IntervalBox::kUnbounded};
  EXPECT_TRUE(b.contains({1, 0}));
  EXPECT_TRUE(b.contains({3, 1000000}));
  EXPECT_FALSE(b.contains({0, 5}));
  EXPECT_FALSE(b.contains({4, 0}));
  EXPECT_FALSE(b.empty());
  // Arity mismatch is a contract violation, not a silent false.
  EXPECT_THROW(b.contains({1}), std::invalid_argument);
  EXPECT_THROW(b.contains({1, 2, 3}), std::invalid_argument);
}

TEST(IntervalBox, EmptyAndIntersect) {
  IntervalBox a(2), b(2);
  a.lo = {0, 2};
  a.hi = {5, 4};
  b.lo = {3, 0};
  b.hi = {IntervalBox::kUnbounded, 3};
  const IntervalBox c = a.intersect(b);
  EXPECT_EQ(c.lo, (std::vector<std::size_t>{3, 2}));
  EXPECT_EQ(c.hi, (std::vector<std::size_t>{5, 3}));
  EXPECT_FALSE(c.empty());
  // Disjoint on coordinate 1 -> empty intersection (lo > hi).
  IntervalBox d(2);
  d.lo = {0, 5};
  d.hi = {IntervalBox::kUnbounded, 9};
  EXPECT_TRUE(a.intersect(d).empty());
  // An empty box (lo > bounded hi) reports empty, and an unbounded hi never
  // makes a box empty regardless of lo.
  IntervalBox e(1);
  e.lo = {4};
  e.hi = {2};
  EXPECT_TRUE(e.empty());
  e.hi = {IntervalBox::kUnbounded};
  EXPECT_FALSE(e.empty());
  EXPECT_THROW(a.intersect(e), std::invalid_argument);
}

TEST(Canonicalize, DropsSubsumedCoalescesAdjacent) {
  // [0,2] and [3,5] on one coordinate with equal other coordinates are
  // adjacent: they coalesce; the strictly-inside box is then subsumed.
  IntervalBox left(2), right(2), inside(2);
  left.lo = {0, 1};
  left.hi = {2, 1};
  right.lo = {3, 1};
  right.hi = {5, 1};
  inside.lo = {1, 1};
  inside.hi = {4, 1};
  const auto canon = canonicalize_boxes({left, inside, right});
  ASSERT_EQ(canon.size(), 1u);
  EXPECT_EQ(canon[0].lo, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(canon[0].hi, (std::vector<std::size_t>{5, 1}));
}

TEST(Canonicalize, EmptyBoxesAndMixedArity) {
  IntervalBox dead(2);
  dead.lo = {3, 0};
  dead.hi = {1, 0};  // lo > hi
  EXPECT_TRUE(canonicalize_boxes({dead}).empty());
  EXPECT_TRUE(canonicalize_boxes({}).empty());
  EXPECT_THROW(canonicalize_boxes({IntervalBox(2), IntervalBox(3)}),
               std::invalid_argument);
}

TEST(Canonicalize, SubsumptionWithUnboundedSides) {
  IntervalBox wide(1), narrow(1);
  wide.lo = {2};
  wide.hi = {IntervalBox::kUnbounded};
  narrow.lo = {5};
  narrow.hi = {9};
  EXPECT_TRUE(box_subsumes(wide, narrow));
  EXPECT_FALSE(box_subsumes(narrow, wide));
  const auto canon = canonicalize_boxes({narrow, wide});
  ASSERT_EQ(canon.size(), 1u);
  EXPECT_EQ(canon[0].lo[0], 2u);
  EXPECT_EQ(canon[0].hi[0], IntervalBox::kUnbounded);
}

// canonicalize_boxes must be idempotent and membership-preserving. Random
// raw DNFs over <= 4 states, exhaustive count sweep over [0,6]^k.
TEST(Canonicalize, IdempotentAndMembershipEquivalentExhaustively) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t k = 1 + rng.index(4);
    std::vector<UC> pool;
    for (int i = 0; i < 5; ++i) {
      const std::size_t q = rng.index(k);
      const std::size_t b = rng.index(6);
      pool.push_back(rng.coin() ? UC::le(q, b) : UC::ge(q, b));
    }
    UC c = pool[0];
    for (std::size_t i = 1; i < pool.size(); ++i) {
      switch (rng.index(3)) {
        case 0: c = c && pool[i]; break;
        case 1: c = c || pool[i]; break;
        default: c = !c || pool[i]; break;
      }
    }
    const auto raw = c.to_boxes_raw(k);
    const auto canon = canonicalize_boxes(raw);
    const auto twice = canonicalize_boxes(canon);
    ASSERT_EQ(canon.size(), twice.size()) << c.to_string();
    for (std::size_t i = 0; i < canon.size(); ++i) {
      EXPECT_EQ(canon[i].lo, twice[i].lo) << c.to_string();
      EXPECT_EQ(canon[i].hi, twice[i].hi) << c.to_string();
    }

    std::vector<std::size_t> counts(k, 0);
    while (true) {
      bool in_raw = false, in_canon = false;
      for (const auto& box : raw) in_raw = in_raw || box.contains(counts);
      for (const auto& box : canon) in_canon = in_canon || box.contains(counts);
      ASSERT_EQ(in_raw, in_canon) << c.to_string();
      // Odometer over [0,6]^k.
      std::size_t d = 0;
      while (d < k && counts[d] == 6) counts[d++] = 0;
      if (d == k) break;
      ++counts[d];
    }
  }
}

TEST(UopAutomaton, BuilderAndValidation) {
  AutomatonBuilder b;
  const auto q0 = b.add_state("leaf", false);
  const auto q1 = b.add_state("root", true);
  b.set_transition(q0, UC::exactly(q0, 0) && UC::exactly(q1, 0));
  b.set_transition(q1, UC::ge(q0, 1));
  const UOPAutomaton a = b.build();
  EXPECT_EQ(a.state_count, 2u);
  EXPECT_NO_THROW(a.validate());
}

TEST(UopAutomaton, AcceptingRunOnStar) {
  // Accept iff root has >= 2 leaf children.
  AutomatonBuilder b;
  const auto leaf = b.add_state("leaf", false);
  const auto root = b.add_state("root", true);
  b.set_transition(leaf, UC::exactly(leaf, 0) && UC::exactly(root, 0));
  b.set_transition(root, UC::ge(leaf, 2) && UC::exactly(root, 0));
  const UOPAutomaton a = b.build();

  const RootedTree star3({RootedTree::kNoParent, 0, 0, 0});
  const RootedTree star1({RootedTree::kNoParent, 0});
  EXPECT_TRUE(accepts(a, star3));
  EXPECT_FALSE(accepts(a, star1));
  const auto run = find_accepting_run(a, star3);
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(is_accepting_run(a, star3, *run));
}

TEST(UopAutomaton, RunCheckerRejectsWrongRuns) {
  AutomatonBuilder b;
  const auto leaf = b.add_state("leaf", false);
  const auto root = b.add_state("root", true);
  b.set_transition(leaf, UC::exactly(leaf, 0) && UC::exactly(root, 0));
  b.set_transition(root, UC::ge(leaf, 1) && UC::exactly(root, 0));
  const UOPAutomaton a = b.build();
  const RootedTree star2({RootedTree::kNoParent, 0, 0});
  EXPECT_FALSE(is_accepting_run(a, star2, {leaf, leaf, leaf}));  // root not accepting
  EXPECT_FALSE(is_accepting_run(a, star2, {root, root, leaf}));  // bad transition
  EXPECT_TRUE(is_accepting_run(a, star2, {root, leaf, leaf}));
}

// Exhaustive cross-validation: every library automaton against its oracle on
// every tree with up to 9 vertices (via random sampling of parent arrays, and
// exhaustive AHU-deduplicated enumeration for small n).
class LibraryAutomata : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LibraryAutomata, MatchesOracleOnRandomTrees) {
  const auto entry = standard_tree_automata().at(GetParam());
  Rng rng(500 + GetParam());
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t n = 1 + rng.index(10);
    const Graph tree = make_random_tree(n, rng);
    const bool expected = entry.oracle(tree);

    // Completeness: some good root admits an accepting run.
    bool some_root_accepts = false;
    for (Vertex root : entry.good_roots(tree)) {
      if (accepts(entry.automaton, RootedTree::from_graph(tree, root))) {
        some_root_accepts = true;
        break;
      }
    }
    EXPECT_EQ(some_root_accepts, expected)
        << entry.name << " (completeness) on\n"
        << tree.to_string();

    // Soundness: no root of a no-instance admits an accepting run.
    if (!expected) {
      for (Vertex root = 0; root < tree.vertex_count(); ++root)
        EXPECT_FALSE(accepts(entry.automaton, RootedTree::from_graph(tree, root)))
            << entry.name << " (soundness) root " << root << " on\n"
            << tree.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAutomata, LibraryAutomata,
                         ::testing::Range<std::size_t>(0, 8));

TEST(LibraryAutomata, KnownInstances) {
  const auto lib = standard_tree_automata();
  auto get = [&lib](const std::string& name) -> const NamedAutomaton& {
    for (const auto& e : lib)
      if (e.name == name) return e;
    throw std::out_of_range(name);
  };

  auto accepts_tree = [](const NamedAutomaton& e, const Graph& tree) {
    for (Vertex root : e.good_roots(tree))
      if (accepts(e.automaton, RootedTree::from_graph(tree, root))) return true;
    return false;
  };

  EXPECT_TRUE(accepts_tree(get("path"), make_path(9)));
  EXPECT_FALSE(accepts_tree(get("path"), make_star(5)));
  EXPECT_TRUE(accepts_tree(get("star"), make_star(8)));
  EXPECT_FALSE(accepts_tree(get("star"), make_path(4)));
  EXPECT_TRUE(accepts_tree(get("caterpillar"), make_caterpillar(4, 3)));
  EXPECT_TRUE(accepts_tree(get("caterpillar"), make_path(6)));
  EXPECT_TRUE(accepts_tree(get("perfect-matching"), make_path(8)));
  EXPECT_FALSE(accepts_tree(get("perfect-matching"), make_path(7)));
  EXPECT_FALSE(accepts_tree(get("perfect-matching"), make_star(4)));
  EXPECT_TRUE(accepts_tree(get("perfect-code"), make_star(6)));
  EXPECT_TRUE(accepts_tree(get("radius<=3"), make_path(7)));
  EXPECT_FALSE(accepts_tree(get("radius<=3"), make_path(10)));
  EXPECT_TRUE(accepts_tree(get("leaves>=4"), make_star(5)));
  EXPECT_FALSE(accepts_tree(get("leaves>=4"), make_path(10)));
}

TEST(LibraryAutomata, SpiderHasNoPerfectMatchingButPathDoes) {
  // Spider with three legs of length 2: 7 vertices, odd, no PM.
  Graph spider(7, {{0, 1}, {1, 2}, {0, 3}, {3, 4}, {0, 5}, {5, 6}});
  const auto lib = standard_tree_automata();
  const auto& pm = lib[4];
  ASSERT_EQ(pm.name, "perfect-matching");
  EXPECT_FALSE(pm.oracle(spider));
  for (Vertex root = 0; root < spider.vertex_count(); ++root)
    EXPECT_FALSE(accepts(pm.automaton, RootedTree::from_graph(spider, root)));
}

}  // namespace
}  // namespace lcert
