#include <gtest/gtest.h>

#include "src/cert/audit.hpp"
#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/kernel/reduce.hpp"
#include "src/kernel/types.hpp"
#include "src/logic/ef_game.hpp"
#include "src/logic/eval.hpp"
#include "src/logic/formulas.hpp"
#include "src/logic/metrics.hpp"
#include "src/schemes/kernel_scheme.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/treedepth/exact.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

// Convenience: coherent optimal model of a small graph.
RootedTree small_model(const Graph& g) { return exact_treedepth_with_model(g).model; }

TEST(Types, AncestorVectors) {
  // P3 with model: 1 root, 0 and 2 children.
  const Graph p3 = make_path(3);
  const RootedTree t({1, RootedTree::kNoParent, 1});
  EXPECT_EQ(ancestor_vector(p3, t, 1), std::vector<bool>{});
  EXPECT_EQ(ancestor_vector(p3, t, 0), std::vector<bool>{true});
  EXPECT_EQ(ancestor_vector(p3, t, 2), std::vector<bool>{true});
}

TEST(Types, InterningDeduplicates) {
  TypeInterner interner;
  const TypeId leaf1 = interner.intern({{true}, {}});
  const TypeId leaf2 = interner.intern({{true}, {}});
  const TypeId other = interner.intern({{false}, {}});
  EXPECT_EQ(leaf1, leaf2);
  EXPECT_NE(leaf1, other);
  // Children multisets are canonicalized regardless of insertion order.
  const TypeId a = interner.intern({{}, {{leaf1, 2}, {other, 1}}});
  const TypeId b = interner.intern({{}, {{other, 1}, {leaf1, 2}}});
  EXPECT_EQ(a, b);
}

TEST(Types, SerializationRoundTrip) {
  TypeInterner interner;
  const TypeId leaf = interner.intern({{true, false}, {}});
  const TypeId mid = interner.intern({{true}, {{leaf, 3}}});
  const TypeId root = interner.intern({{}, {{mid, 2}, {leaf, 1}}});
  BitWriter w;
  interner.serialize(root, w);

  TypeInterner other;
  BitReader r(w);
  const auto back = other.deserialize(r);
  ASSERT_TRUE(back.has_value());
  // Re-serialize from the second interner and deserialize into the first:
  // must map to the original id.
  BitWriter w2;
  other.serialize(*back, w2);
  BitReader r2(w2);
  const auto again = interner.deserialize(r2);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, root);
}

TEST(Types, DeserializeRejectsMalformedInput) {
  TypeInterner interner;
  {
    BitWriter w;  // empty stream: truncated
    BitReader r(w);
    EXPECT_FALSE(interner.deserialize(r).has_value());
  }
  {
    // Duplicate child type (same type listed twice) must be rejected.
    TypeInterner tmp;
    const TypeId leaf = tmp.intern({{}, {}});
    (void)leaf;
    BitWriter w;
    w.write_varnat(0);  // empty ancestor vector
    w.write_varnat(2);  // two children entries...
    for (int i = 0; i < 2; ++i) {
      w.write_varnat(1);  // multiplicity 1
      w.write_varnat(0);  // child: empty anc vector
      w.write_varnat(0);  // child: no children
    }
    BitReader r(w);
    EXPECT_FALSE(interner.deserialize(r).has_value());
  }
}

TEST(Types, RealizeTypeRebuildsGraph) {
  // Build a small bounded-td graph, compute the type of the root with no
  // pruning, realize it: must be isomorphic to the original (same size at
  // least, and EF-equivalent at useful depths).
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = make_bounded_treedepth_graph(8, 3, 0.5, rng);
    const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
    TypeInterner interner;
    const auto types = compute_types(inst.graph, model, interner);
    const Graph realized = realize_type(interner, types[model.root()]);
    EXPECT_EQ(realized.vertex_count(), inst.graph.vertex_count());
    EXPECT_EQ(realized.edge_count(), inst.graph.edge_count());
    EXPECT_TRUE(ef_equivalent(inst.graph, realized, 2));
  }
}

TEST(Reduce, NoPruningBelowThreshold) {
  // A path has no k>=1 duplicated subtrees beyond threshold 2 at these sizes.
  const Graph p7 = make_path(7);
  const auto kz = k_reduce(p7, make_coherent(p7, path_model(7)), 2);
  EXPECT_EQ(kz.kernel.vertex_count(), 7u);
  EXPECT_EQ(kz.pruning_operations, 0u);
}

TEST(Reduce, StarShrinksToKLeaves) {
  const Graph star = make_star(20);
  const auto kz = k_reduce(star, small_model(star), 3);
  EXPECT_EQ(kz.kernel.vertex_count(), 4u);  // center + 3 leaves
  EXPECT_EQ(kz.pruning_operations, 16u);
  // Lemma 6.1: the pruned leaves' type retains exactly 3 kept copies.
  std::size_t pruned_count = 0;
  for (Vertex v = 0; v < 20; ++v) pruned_count += kz.pruned[v] ? 1 : 0;
  EXPECT_EQ(pruned_count, 16u);
}

TEST(Reduce, KernelSizeIndependentOfN) {
  // Stars of any size reduce to the same kernel: center + k leaves.
  std::vector<std::size_t> sizes;
  for (std::size_t n : {30u, 100u, 300u}) {
    const Graph star = make_star(n);
    std::vector<std::size_t> parent(n, 0);
    parent[0] = RootedTree::kNoParent;
    const auto kz = k_reduce(star, RootedTree(parent), 2);
    sizes.push_back(kz.kernel.vertex_count());
  }
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], sizes[0]);
  EXPECT_EQ(sizes[2], sizes[0]);
}

TEST(Reduce, EndTypesSatisfyLemma61) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const auto inst = make_bounded_treedepth_graph(5 + rng.index(25), 4, 0.4, rng);
    const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
    const std::size_t k = 1 + rng.index(3);
    const auto kz = k_reduce(inst.graph, model, k);
    for (Vertex u = 0; u < inst.graph.vertex_count(); ++u) {
      if (kz.in_kernel[u] || !kz.pruned[u]) continue;
      const std::size_t v = model.parent(u);
      if (v == RootedTree::kNoParent || !kz.in_kernel[v]) continue;
      std::size_t same_type = 0;
      for (std::size_t sibling : model.children(v))
        if (kz.in_kernel[sibling] && kz.end_type[sibling] == kz.end_type[u]) ++same_type;
      EXPECT_EQ(same_type, k) << "trial " << trial;
    }
  }
}

// Proposition 6.3: G ≃_k kernel(G) — audited by EF games.
class KernelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(KernelEquivalence, EfGameCannotDistinguishKernel) {
  Rng rng(100 + GetParam());
  const std::size_t k = 1 + GetParam() % 3;
  const auto inst = make_bounded_treedepth_graph(7 + rng.index(8), 3, 0.5, rng);
  const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
  const auto kz = k_reduce(inst.graph, model, k);
  EXPECT_TRUE(ef_equivalent(inst.graph, kz.kernel, k))
      << "k=" << k << "\n"
      << inst.graph.to_string() << kz.kernel.to_string();
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelEquivalence, ::testing::Range(0, 18));

TEST(Reduce, KernelPreservesFormulas) {
  // Direct check: FO formulas of depth <= k agree on G and kernel(G).
  Rng rng(4);
  const auto properties = standard_properties();
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = make_bounded_treedepth_graph(6 + rng.index(12), 3, 0.5, rng);
    const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
    for (const auto& prop : properties) {
      const std::size_t depth = quantifier_depth(prop.formula);
      if (depth > 3) continue;
      // For MSO properties use a larger threshold (2^depth is generous here).
      const std::size_t k = uses_set_quantifiers(prop.formula) ? (1u << depth) : depth;
      if (inst.graph.vertex_count() > 14 && uses_set_quantifiers(prop.formula)) continue;
      const auto kz = k_reduce(inst.graph, model, k);
      EXPECT_EQ(evaluate(inst.graph, prop.formula), evaluate(kz.kernel, prop.formula))
          << prop.name << " k=" << k << "\n"
          << inst.graph.to_string() << kz.kernel.to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// KernelMsoScheme (Theorem 2.6).
// ---------------------------------------------------------------------------

TEST(KernelScheme, CompletenessOnBoundedTreedepthInstances) {
  Rng rng(5);
  const Formula phi = f_triangle_free();  // depth 3 FO
  for (int trial = 0; trial < 10; ++trial) {
    auto inst = make_bounded_treedepth_graph(10 + rng.index(10), 3, 0.25, rng);
    assign_random_ids(inst.graph, rng);
    RootedTree witness = inst.elimination_tree;
    KernelMsoScheme scheme(phi, 3, 3, [witness](const Graph&) { return witness; });
    if (!scheme.holds(inst.graph)) continue;  // instance has a triangle
    require_complete(scheme, inst.graph);
  }
}

TEST(KernelScheme, ProverRefusesWhenFormulaFails) {
  Rng rng(6);
  const Formula phi = f_clique();
  Graph g = make_path(6);
  assign_random_ids(g, rng);
  KernelMsoScheme scheme(phi, 3, 2);
  EXPECT_FALSE(scheme.holds(g));
  EXPECT_FALSE(scheme.assign(g).has_value());
}

TEST(KernelScheme, ProverRefusesWhenTreedepthTooLarge) {
  Rng rng(7);
  Graph g = make_path(20);  // td = 5
  assign_random_ids(g, rng);
  KernelMsoScheme scheme(f_triangle_free(), 3, 3);
  EXPECT_FALSE(scheme.holds(g));
  EXPECT_FALSE(scheme.assign(g).has_value());
}

TEST(KernelScheme, SoundnessUnderAttack) {
  Rng rng(8);
  // Property: triangle-free (and td<=3). No-instance: a triangle plus a tail.
  Graph no(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  assign_random_ids(no, rng);
  KernelMsoScheme scheme(f_triangle_free(), 4, 3);
  ASSERT_FALSE(scheme.holds(no));
  // Yes template: P5.
  Graph yes = make_path(5);
  assign_random_ids(yes, rng);
  const auto tmpl = scheme.assign(yes);
  ASSERT_TRUE(tmpl.has_value());
  const auto forged = attack_soundness(scheme, no, &*tmpl, rng);
  EXPECT_FALSE(forged.has_value()) << "attack '" << forged->attack << "'";
}

TEST(KernelScheme, SoundAgainstHonestCertsOfWrongGraph) {
  // Replaying certificates from a graph satisfying phi onto one that does not
  // (same vertex count) must be caught.
  Rng rng(9);
  KernelMsoScheme scheme(f_has_dominating_vertex(), 3, 2);
  Graph yes = make_star(8);
  Graph no = make_path(8);
  assign_random_ids(yes, rng);
  assign_random_ids(no, rng);
  ASSERT_TRUE(scheme.holds(yes));
  ASSERT_FALSE(scheme.holds(no));
  auto certs = scheme.assign(yes);
  ASSERT_TRUE(certs.has_value());
  EXPECT_FALSE(verify_assignment(scheme, no, *certs).all_accept);
}

TEST(KernelScheme, CertificateSizeAffineInLogN) {
  Rng rng(10);
  const Formula phi = f_triangle_free();
  std::vector<std::size_t> bits;
  for (std::size_t n : {20u, 40u, 80u, 160u}) {
    // Sparse instances (no ancestor shortcuts) are trees: triangle-free and
    // treedepth <= 3 by construction, so holds() is guaranteed.
    auto inst = make_bounded_treedepth_graph(n, 3, 0.0, rng);
    assign_random_ids(inst.graph, rng);
    RootedTree witness = inst.elimination_tree;
    KernelMsoScheme scheme(phi, 3, 3, [witness](const Graph&) { return witness; });
    if (!scheme.holds(inst.graph)) continue;
    bits.push_back(certified_size_bits(scheme, inst.graph));
  }
  ASSERT_GE(bits.size(), 3u);
  // Doubling n must not multiply certificate size (it is t*log n + f(t,phi)).
  EXPECT_LE(bits.back(), 2 * bits.front());
}

TEST(KernelScheme, WorksForMsoWithLargerThreshold) {
  Rng rng(11);
  const Formula phi = f_two_colorable();  // MSO, depth 3
  for (int trial = 0; trial < 6; ++trial) {
    auto inst = make_bounded_treedepth_graph(10 + rng.index(6), 3, 0.3, rng);
    assign_random_ids(inst.graph, rng);
    RootedTree witness = inst.elimination_tree;
    KernelMsoScheme scheme(phi, 3, 8, [witness](const Graph&) { return witness; });
    const bool expected = evaluate(inst.graph, phi);
    EXPECT_EQ(scheme.holds(inst.graph), expected);
    if (expected) require_complete(scheme, inst.graph);
  }
}

}  // namespace
}  // namespace lcert
