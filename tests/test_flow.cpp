#include "src/util/flow.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace lcert {
namespace {

TEST(MaxFlow, SimplePath) {
  MaxFlow mf(3);
  mf.add_edge(0, 1, 5);
  mf.add_edge(1, 2, 3);
  EXPECT_EQ(mf.run(0, 2), 3);
}

TEST(MaxFlow, Diamond) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 2);
  mf.add_edge(0, 2, 2);
  mf.add_edge(1, 3, 2);
  mf.add_edge(2, 3, 2);
  EXPECT_EQ(mf.run(0, 3), 4);
}

TEST(MaxFlow, BottleneckMiddleEdge) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 10);
  const std::size_t mid = mf.add_edge(1, 2, 1);
  mf.add_edge(2, 3, 10);
  EXPECT_EQ(mf.run(0, 3), 1);
  EXPECT_EQ(mf.flow_on(mid), 1);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 5);
  mf.add_edge(2, 3, 5);
  EXPECT_EQ(mf.run(0, 3), 0);
}

TEST(MaxFlow, BipartiteMatching) {
  // 3x3 bipartite, perfect matching exists.
  MaxFlow mf(8);  // 0 source, 7 sink, 1-3 left, 4-6 right
  for (int l = 1; l <= 3; ++l) mf.add_edge(0, l, 1);
  for (int r = 4; r <= 6; ++r) mf.add_edge(r, 7, 1);
  mf.add_edge(1, 4, 1);
  mf.add_edge(1, 5, 1);
  mf.add_edge(2, 5, 1);
  mf.add_edge(3, 6, 1);
  EXPECT_EQ(mf.run(0, 7), 3);
}

TEST(BoundedFlow, FeasibleWithLowerBounds) {
  // Two children must be assigned to states with bounds [1,1] and [1,1].
  BoundedFlowProblem p;
  const auto s = p.add_node();
  const auto t = p.add_node();
  const auto c1 = p.add_node();
  const auto c2 = p.add_node();
  const auto q1 = p.add_node();
  const auto q2 = p.add_node();
  p.source = s;
  p.sink = t;
  p.add_edge(s, c1, 1, 1);
  p.add_edge(s, c2, 1, 1);
  p.add_edge(c1, q1, 0, 1);
  p.add_edge(c1, q2, 0, 1);
  p.add_edge(c2, q2, 0, 1);
  p.add_edge(q1, t, 1, 1);
  p.add_edge(q2, t, 1, 1);
  std::vector<std::int64_t> flow;
  ASSERT_TRUE(p.feasible(flow));
  // c2 can only reach q2, so c1 must take q1.
  EXPECT_EQ(flow[2], 1);  // c1 -> q1
  EXPECT_EQ(flow[4], 1);  // c2 -> q2
}

TEST(BoundedFlow, InfeasibleLowerBound) {
  BoundedFlowProblem p;
  const auto s = p.add_node();
  const auto t = p.add_node();
  const auto c1 = p.add_node();
  const auto q1 = p.add_node();
  const auto q2 = p.add_node();
  p.source = s;
  p.sink = t;
  p.add_edge(s, c1, 1, 1);
  p.add_edge(c1, q1, 0, 1);
  p.add_edge(q1, t, 0, 1);
  p.add_edge(q2, t, 1, 2);  // q2 demands flow but nothing feeds it
  std::vector<std::int64_t> flow;
  EXPECT_FALSE(p.feasible(flow));
}

TEST(BoundedFlow, ZeroFlowIsFeasibleWhenNoLowerBounds) {
  BoundedFlowProblem p;
  const auto s = p.add_node();
  const auto t = p.add_node();
  p.source = s;
  p.sink = t;
  p.add_edge(s, t, 0, 5);
  std::vector<std::int64_t> flow;
  ASSERT_TRUE(p.feasible(flow));
  EXPECT_EQ(flow[0], 0);
}

TEST(BoundedFlow, RandomizedAgainstBruteForce) {
  // Random children/state assignment problems, checked against exhaustive
  // enumeration of assignments.
  Rng rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t children = 1 + rng.index(4);
    const std::size_t states = 1 + rng.index(3);
    std::vector<std::vector<bool>> allowed(children, std::vector<bool>(states));
    for (auto& row : allowed)
      for (std::size_t q = 0; q < states; ++q) row[q] = rng.coin(0.6);
    std::vector<std::size_t> lo(states), hi(states);
    for (std::size_t q = 0; q < states; ++q) {
      lo[q] = rng.index(3);
      hi[q] = lo[q] + rng.index(3);
    }

    // Brute force.
    bool brute = false;
    std::vector<std::size_t> counts(states, 0);
    std::vector<std::size_t> pick(children, 0);
    const std::size_t total = [&] {
      std::size_t t = 1;
      for (std::size_t i = 0; i < children; ++i) t *= states;
      return t;
    }();
    for (std::size_t code = 0; code < total && !brute; ++code) {
      std::size_t c = code;
      std::fill(counts.begin(), counts.end(), 0);
      bool ok = true;
      for (std::size_t i = 0; i < children; ++i) {
        pick[i] = c % states;
        c /= states;
        if (!allowed[i][pick[i]]) {
          ok = false;
          break;
        }
        ++counts[pick[i]];
      }
      if (!ok) continue;
      for (std::size_t q = 0; q < states; ++q)
        if (counts[q] < lo[q] || counts[q] > hi[q]) ok = false;
      brute = brute || ok;
    }

    // Flow formulation.
    BoundedFlowProblem p;
    const auto s = p.add_node();
    const auto t = p.add_node();
    std::vector<std::size_t> child_nodes(children), state_nodes(states);
    for (auto& cn : child_nodes) {
      cn = p.add_node();
      p.add_edge(s, cn, 1, 1);
    }
    for (std::size_t q = 0; q < states; ++q) {
      state_nodes[q] = p.add_node();
      p.add_edge(state_nodes[q], t, static_cast<std::int64_t>(lo[q]),
                 static_cast<std::int64_t>(hi[q]));
    }
    for (std::size_t i = 0; i < children; ++i)
      for (std::size_t q = 0; q < states; ++q)
        if (allowed[i][q]) p.add_edge(child_nodes[i], state_nodes[q], 0, 1);
    p.source = s;
    p.sink = t;
    std::vector<std::int64_t> flow;
    EXPECT_EQ(p.feasible(flow), brute) << "trial " << trial;
  }
}

}  // namespace
}  // namespace lcert
