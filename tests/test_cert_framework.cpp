#include <gtest/gtest.h>

#include "src/cert/audit.hpp"
#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

// A minimal scheme for exercising the framework: certifies "the graph is a
// star" by marking the center; leaves check they see exactly one marked
// neighbor and the center checks it is marked and saw no marked neighbor.
class StarScheme final : public Scheme {
 public:
  std::string name() const override { return "star"; }
  bool holds(const Graph& g) const override {
    if (g.vertex_count() <= 2) return true;
    std::size_t centers = 0;
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      if (g.degree(v) == g.vertex_count() - 1)
        ++centers;
      else if (g.degree(v) != 1)
        return false;
    }
    return centers == 1;
  }
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override {
    if (!holds(g)) return std::nullopt;
    std::vector<Certificate> certs(g.vertex_count());
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      BitWriter w;
      w.write_bit(g.degree(v) == g.vertex_count() - 1 ||
                  (g.vertex_count() <= 2 && v == 0));
      certs[v] = Certificate::from_writer(w);
    }
    return certs;
  }
  bool verify(const ViewRef& view) const override {
    BitReader r = view.certificate->reader();
    const bool marked = r.read_bit();
    if (!r.exhausted()) return false;
    std::size_t marked_neighbors = 0;
    for (const auto& nb : view.neighbors()) {
      BitReader nr = nb.certificate->reader();
      if (nr.read_bit()) ++marked_neighbors;
      if (!nr.exhausted()) return false;
    }
    if (marked) return marked_neighbors == 0;
    return marked_neighbors == 1 && view.degree() == 1;
  }
};

TEST(Engine, MakeViewExposesExactlyRadiusOne) {
  Rng rng(1);
  Graph g = make_cycle(5);
  assign_random_ids(g, rng);
  std::vector<Certificate> certs(5);
  for (Vertex v = 0; v < 5; ++v) {
    BitWriter w;
    w.write(v, 3);
    certs[v] = Certificate::from_writer(w);
  }
  const View view = make_view(g, certs, 0);
  EXPECT_EQ(view.id, g.id(0));
  EXPECT_EQ(view.degree(), 2u);
  EXPECT_TRUE(view.has_neighbor_id(g.id(1)));
  EXPECT_TRUE(view.has_neighbor_id(g.id(4)));
  EXPECT_FALSE(view.has_neighbor_id(g.id(2)));
  EXPECT_EQ(*view.neighbor_certificate(g.id(1)), certs[1]);
  EXPECT_EQ(view.neighbor_certificate(12345u), nullptr);
}

TEST(Engine, VerificationOutcomeAccounting) {
  Rng rng(2);
  StarScheme scheme;
  Graph star = make_star(6);
  assign_random_ids(star, rng);
  const auto outcome = run_scheme(scheme, star);
  EXPECT_TRUE(outcome.prover_succeeded);
  EXPECT_TRUE(outcome.verification.all_accept);
  EXPECT_EQ(outcome.verification.max_certificate_bits, 1u);
  EXPECT_EQ(outcome.verification.total_certificate_bits, 6u);
}

TEST(Engine, RejectingVerticesAreReported) {
  Rng rng(3);
  StarScheme scheme;
  Graph star = make_star(5);
  assign_random_ids(star, rng);
  auto certs = *scheme.assign(star);
  // Unmark the center: every leaf loses its marked neighbor, center passes
  // (marked=false requires degree 1, center has 4 -> rejects too).
  BitWriter w;
  w.write_bit(false);
  certs[0] = Certificate::from_writer(w);
  const auto outcome = verify_assignment(scheme, star, certs);
  EXPECT_FALSE(outcome.all_accept);
  EXPECT_EQ(outcome.rejecting.size(), 5u);
}

TEST(Engine, TruncatedCertificateIsARejection) {
  Rng rng(4);
  StarScheme scheme;
  Graph star = make_star(4);
  assign_random_ids(star, rng);
  std::vector<Certificate> empty(4);  // zero-bit certs: decode underflow
  const auto outcome = verify_assignment(scheme, star, empty);
  EXPECT_FALSE(outcome.all_accept);
}

TEST(Engine, SchemeBugsAreNotMaskedAsRejections) {
  // Only CertificateTruncated means "malformed certificate -> reject". A
  // verifier throwing anything else — including a plain std::out_of_range
  // from e.g. vector::at — is a library bug and must propagate.
  class BuggyScheme final : public Scheme {
   public:
    std::string name() const override { return "buggy"; }
    bool holds(const Graph&) const override { return true; }
    std::optional<std::vector<Certificate>> assign(const Graph& g) const override {
      return std::vector<Certificate>(g.vertex_count());
    }
    bool verify(const ViewRef&) const override {
      throw std::out_of_range("vector::at oops");
    }
  };
  Rng rng(40);
  BuggyScheme scheme;
  Graph g = make_path(4);
  assign_random_ids(g, rng);
  const std::vector<Certificate> certs(4);
  EXPECT_THROW(verify_assignment(scheme, g, certs), std::out_of_range);
  // Same bug under the parallel fan-out: the pool rethrows on the caller.
  EXPECT_THROW(verify_assignment(scheme, g, certs, RunOptions{4, false}),
               std::out_of_range);
}

TEST(Engine, CertifiedSizeThrowsOnProverFailure) {
  Rng rng(5);
  StarScheme scheme;
  Graph path = make_path(5);
  assign_random_ids(path, rng);
  EXPECT_THROW(certified_size_bits(scheme, path), std::logic_error);
}

TEST(Audit, RequireCompleteValidatesInstances) {
  Rng rng(6);
  StarScheme scheme;
  Graph star = make_star(5);
  assign_random_ids(star, rng);
  EXPECT_NO_THROW(require_complete(scheme, star));
  Graph path = make_path(5);
  assign_random_ids(path, rng);
  EXPECT_THROW(require_complete(scheme, path), std::invalid_argument);
}

TEST(Audit, AttackRejectsYesInstances) {
  Rng rng(7);
  StarScheme scheme;
  Graph star = make_star(5);
  assign_random_ids(star, rng);
  EXPECT_THROW(attack_soundness(scheme, star, nullptr, rng), std::invalid_argument);
}

TEST(Audit, AttackFindsForgeryInUnsoundScheme) {
  // A scheme whose verifier accepts everything is forged immediately.
  class AcceptAll final : public Scheme {
   public:
    std::string name() const override { return "accept-all"; }
    bool holds(const Graph& g) const override { return g.vertex_count() % 2 == 0; }
    std::optional<std::vector<Certificate>> assign(const Graph& g) const override {
      return std::vector<Certificate>(g.vertex_count());
    }
    bool verify(const ViewRef&) const override { return true; }
  };
  Rng rng(8);
  AcceptAll scheme;
  Graph odd = make_path(5);
  assign_random_ids(odd, rng);
  const auto forged = attack_soundness(scheme, odd, nullptr, rng);
  ASSERT_TRUE(forged.has_value());
}

TEST(Audit, ExhaustiveAttackIsExhaustive) {
  // A scheme that accepts iff some vertex holds the magic 3-bit value 5 —
  // random attacks may miss it on a tiny budget; the exhaustive attack cannot.
  class MagicScheme final : public Scheme {
   public:
    std::string name() const override { return "magic"; }
    bool holds(const Graph&) const override { return false; }  // no yes-instances
    std::optional<std::vector<Certificate>> assign(const Graph&) const override {
      return std::nullopt;
    }
    bool verify(const ViewRef& view) const override {
      auto has_magic = [](const Certificate& c) {
        if (c.bit_size != 3) return false;
        BitReader r = c.reader();
        return r.read(3) == 5;
      };
      if (has_magic(*view.certificate)) return true;
      for (const auto& nb : view.neighbors())
        if (has_magic(*nb.certificate)) return true;
      return false;
    }
  };
  Rng rng(9);
  MagicScheme scheme;
  Graph g = make_path(3);
  assign_random_ids(g, rng);
  const auto forged = exhaustive_soundness_attack(scheme, g, 3);
  ASSERT_TRUE(forged.has_value());
  EXPECT_EQ(forged->attack, "exhaustive");
  EXPECT_TRUE(verify_assignment(scheme, g, forged->certificates).all_accept);
}

TEST(Audit, ExhaustiveAttackRefusesHugeSpaces) {
  StarScheme scheme;
  Rng rng(10);
  Graph path = make_path(12);
  assign_random_ids(path, rng);
  EXPECT_THROW(exhaustive_soundness_attack(scheme, path, 8), std::invalid_argument);
}

}  // namespace
}  // namespace lcert
