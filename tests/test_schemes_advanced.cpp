#include <gtest/gtest.h>

#include "src/cert/audit.hpp"
#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/minors.hpp"
#include "src/graph/tree_iso.hpp"
#include "src/logic/eval.hpp"
#include "src/kernel/reduce.hpp"
#include "src/logic/formulas.hpp"
#include "src/schemes/automorphism_scheme.hpp"
#include "src/schemes/depth2_fo.hpp"
#include "src/schemes/existential_fo.hpp"
#include "src/schemes/minor_free.hpp"
#include "src/schemes/tree_depth_bounded.hpp"
#include "src/schemes/universal.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

// ---------------------------------------------------------------------------
// UniversalScheme.
// ---------------------------------------------------------------------------

TEST(UniversalScheme, CompleteAndSoundForTriangleFreeness) {
  UniversalScheme scheme("triangle-free",
                         [](const Graph& g) { return evaluate(g, f_triangle_free()); });
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_random_connected(3 + rng.index(8), 0.3, rng);
    assign_random_ids(g, rng);
    if (scheme.holds(g)) {
      require_complete(scheme, g);
    } else {
      const auto forged = attack_soundness(scheme, g, nullptr, rng);
      EXPECT_FALSE(forged.has_value());
    }
  }
}

TEST(UniversalScheme, RejectsDescriptionOfDifferentGraph) {
  UniversalScheme scheme("any", [](const Graph&) { return true; });
  Rng rng(2);
  Graph g = make_cycle(6);
  Graph h = make_path(6);
  assign_random_ids(g, rng);
  auto certs_h = [&] {
    Graph hh = h;
    std::vector<VertexId> ids;
    for (Vertex v = 0; v < 6; ++v) ids.push_back(g.id(v));
    hh.set_ids(ids);
    return *scheme.assign(hh);
  }();
  // Describing P6 to the vertices of C6 must be caught by row checks.
  EXPECT_FALSE(verify_assignment(scheme, g, certs_h).all_accept);
}

TEST(UniversalScheme, QuadraticCertificateSize) {
  UniversalScheme scheme("any", [](const Graph&) { return true; });
  Rng rng(3);
  std::size_t prev = 0;
  for (std::size_t n : {8u, 16u, 32u}) {
    Graph g = make_random_connected(n, 0.5, rng);
    assign_random_ids(g, rng);
    const std::size_t bits = certified_size_bits(scheme, g);
    EXPECT_GT(bits, n * (n - 1) / 2);  // at least the adjacency triangle
    EXPECT_GT(bits, prev);
    prev = bits;
  }
}

// ---------------------------------------------------------------------------
// ExistentialFoScheme (Lemma A.2).
// ---------------------------------------------------------------------------

TEST(ExistentialFoScheme, RejectsNonExistentialSentences) {
  EXPECT_THROW((ExistentialFoScheme(f_clique())), std::invalid_argument);
  EXPECT_THROW((ExistentialFoScheme(f_two_colorable())), std::invalid_argument);
}

TEST(ExistentialFoScheme, CompleteOnWitnessedInstances) {
  Rng rng(4);
  ExistentialFoScheme scheme(f_independent_set_of_size(3));
  for (int trial = 0; trial < 12; ++trial) {
    Graph g = make_random_connected(5 + rng.index(6), 0.3, rng);
    assign_random_ids(g, rng);
    if (!scheme.holds(g)) continue;
    require_complete(scheme, g);
  }
}

TEST(ExistentialFoScheme, SoundOnCliques) {
  Rng rng(5);
  ExistentialFoScheme scheme(f_independent_set_of_size(3));
  Graph no = make_complete(6);  // no independent set of size 2 even
  assign_random_ids(no, rng);
  ASSERT_FALSE(scheme.holds(no));
  EXPECT_FALSE(scheme.assign(no).has_value());
  // Template from a path (which has the independent set).
  Graph yes = make_path(6);
  assign_random_ids(yes, rng);
  const auto tmpl = scheme.assign(yes);
  ASSERT_TRUE(tmpl.has_value());
  const auto forged = attack_soundness(scheme, no, &*tmpl, rng);
  EXPECT_FALSE(forged.has_value()) << forged->attack;
}

TEST(ExistentialFoScheme, PathWitnessAndLogSize) {
  Rng rng(6);
  ExistentialFoScheme scheme(f_has_path_subgraph(4));
  std::vector<std::size_t> bits;
  for (std::size_t n : {8u, 32u, 128u}) {
    Graph g = make_path(n);
    assign_random_ids(g, rng);
    ASSERT_TRUE(scheme.holds(g));
    bits.push_back(certified_size_bits(scheme, g));
  }
  // O(k log n): quadrupling n must far less than quadruple the size.
  EXPECT_LT(bits[2], bits[0] * 3);
}

TEST(ExistentialFoScheme, LyingMatrixIsCaught) {
  Rng rng(7);
  // Claim adjacency between two non-adjacent witnesses.
  ExistentialFoScheme scheme(
      Formula(exists("x", exists("y", adj("x", "y") && !eq("x", "y"))).ptr()));
  Graph g = make_path(5);
  assign_random_ids(g, rng);
  auto certs = scheme.assign(g);
  ASSERT_TRUE(certs.has_value());
  // Flip a matrix bit in every certificate consistently: the witnesses' row
  // checks must now fail somewhere.
  // (Decode-edit-reencode is overkill: flipping the same bit position in all
  // certificates keeps neighbor-agreement intact, isolating the row check.)
  std::vector<Certificate> tampered = *certs;
  // Matrix bit of the (0,1) pair sits right after varnat(k) + 2 id varnats.
  // Rather than computing the offset, flip each bit position in turn and
  // require that *no* tampered assignment with consistent flips is accepted
  // unless it decodes to the honest value.
  bool some_consistent_forgery = false;
  for (std::size_t bit = 0; bit < tampered[0].bit_size; ++bit) {
    std::vector<Certificate> attempt = *certs;
    for (auto& c : attempt) {
      if (bit < c.bit_size) c.bytes[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
    }
    if (attempt == *certs) continue;
    if (verify_assignment(scheme, g, attempt).all_accept) {
      // Accepting a consistently-flipped assignment is fine only if the flip
      // does not change the claim's truth (e.g. flipping an unused tree bit
      // is still caught by tree checks; matrix flips must not survive).
      some_consistent_forgery = true;
    }
  }
  EXPECT_FALSE(some_consistent_forgery);
}

// ---------------------------------------------------------------------------
// Depth2FoScheme (Lemma A.3).
// ---------------------------------------------------------------------------

TEST(Depth2FoScheme, RejectsDeepSentences) {
  EXPECT_THROW((Depth2FoScheme(f_diameter_le_2())), std::invalid_argument);
}

TEST(Depth2FoScheme, TruthTableMatchesSemanticsOnRandomGraphs) {
  // The Lemma A.3 collapse: a depth-2 sentence's truth is determined by the
  // (P1, P2, P3) class. Audit on random graphs for several sentences.
  const std::vector<Formula> sentences = {
      f_clique(),
      f_has_dominating_vertex(),
      f_at_most_one_vertex(),
      !f_clique(),
      Formula((f_clique() || !f_has_dominating_vertex()).ptr()),
      forall("x", exists("y", adj("x", "y"))),
  };
  Rng rng(8);
  for (const auto& phi : sentences) {
    Depth2FoScheme scheme{phi};
    for (int trial = 0; trial < 20; ++trial) {
      Graph g = make_random_connected(1 + rng.index(8), 0.4, rng);
      EXPECT_EQ(scheme.holds(g), evaluate(g, phi)) << phi.to_string() << "\n" << g.to_string();
    }
  }
}

TEST(Depth2FoScheme, CompleteAndSound) {
  Rng rng(9);
  Depth2FoScheme scheme(f_has_dominating_vertex());
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_random_connected(2 + rng.index(8), 0.4, rng);
    assign_random_ids(g, rng);
    if (scheme.holds(g)) {
      require_complete(scheme, g);
    } else {
      Graph yes = make_star(g.vertex_count());
      assign_random_ids(yes, rng);
      const auto tmpl = scheme.assign(yes);
      ASSERT_TRUE(tmpl.has_value());
      const auto forged = attack_soundness(scheme, g, &*tmpl, rng);
      EXPECT_FALSE(forged.has_value()) << forged->attack;
    }
  }
}

TEST(Depth2FoScheme, NegatedCliqueOnCliqueIsRefused) {
  Rng rng(10);
  Depth2FoScheme scheme{Formula((!f_clique()).ptr())};
  Graph clique = make_complete(5);
  assign_random_ids(clique, rng);
  EXPECT_FALSE(scheme.holds(clique));
  EXPECT_FALSE(scheme.assign(clique).has_value());
  const auto forged = attack_soundness(scheme, clique, nullptr, rng);
  EXPECT_FALSE(forged.has_value());
}

// ---------------------------------------------------------------------------
// TreeDepthBoundedScheme (the O(log k) contrast).
// ---------------------------------------------------------------------------

TEST(TreeDepthBounded, CompleteOnShallowTrees) {
  Rng rng(11);
  TreeDepthBoundedScheme scheme(4);  // radius <= 3
  for (int trial = 0; trial < 15; ++trial) {
    const RootedTree t = make_random_rooted_tree(3 + rng.index(25), 3, rng);
    Graph g = t.to_graph();
    assign_random_ids(g, rng);
    ASSERT_TRUE(scheme.holds(g));
    require_complete(scheme, g);
    EXPECT_LE(certified_size_bits(scheme, g), scheme.certificate_bits());
  }
}

TEST(TreeDepthBounded, SoundOnDeepTrees) {
  Rng rng(12);
  TreeDepthBoundedScheme scheme(3);  // radius <= 2
  Graph deep = make_path(9);         // radius 4
  assign_random_ids(deep, rng);
  ASSERT_FALSE(scheme.holds(deep));
  Graph yes = make_star(9);
  assign_random_ids(yes, rng);
  const auto tmpl = scheme.assign(yes);
  ASSERT_TRUE(tmpl.has_value());
  const auto forged = attack_soundness(scheme, deep, &*tmpl, rng);
  EXPECT_FALSE(forged.has_value()) << forged->attack;
}

TEST(TreeDepthBounded, SizeIndependentOfN) {
  Rng rng(13);
  TreeDepthBoundedScheme scheme(3);
  std::size_t bits_small = 0, bits_big = 0;
  {
    Graph g = make_star(10);
    assign_random_ids(g, rng);
    bits_small = certified_size_bits(scheme, g);
  }
  {
    Graph g = make_star(1000);
    assign_random_ids(g, rng);
    bits_big = certified_size_bits(scheme, g);
  }
  EXPECT_EQ(bits_small, bits_big);
}

// ---------------------------------------------------------------------------
// FpfAutomorphismScheme (Theorem 2.3's matching upper bound).
// ---------------------------------------------------------------------------

TEST(FpfAutomorphism, CompleteOnSymmetricTrees) {
  Rng rng(14);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t half = 2 + rng.index(10);
    const Graph t = make_random_tree(half, rng);
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (auto [u, v] : t.edges()) {
      edges.emplace_back(u, v);
      edges.emplace_back(u + half, v + half);
    }
    edges.emplace_back(0, half);
    Graph doubled(2 * half, edges);
    assign_random_ids(doubled, rng);
    FpfAutomorphismScheme scheme;
    ASSERT_TRUE(scheme.holds(doubled));
    require_complete(scheme, doubled);
  }
}

TEST(FpfAutomorphism, SoundOnAsymmetricTrees) {
  Rng rng(15);
  FpfAutomorphismScheme scheme;
  Graph no = make_star(7);  // center is fixed by every automorphism
  assign_random_ids(no, rng);
  ASSERT_FALSE(scheme.holds(no));
  const auto forged = attack_soundness(scheme, no, nullptr, rng);
  EXPECT_FALSE(forged.has_value());
}

TEST(FpfAutomorphism, ReplayedDescriptionOfOtherTreeCaught) {
  Rng rng(16);
  FpfAutomorphismScheme scheme;
  // Yes-instance: P_6 (reversal). No-instance with same size: P_5 + leaf at center...
  // use the star K_{1,5} (6 vertices, no FPF automorphism).
  Graph yes = make_path(6);
  Graph no = make_star(6);
  assign_random_ids(yes, rng);
  Graph no_with_same_ids = no;
  {
    std::vector<VertexId> ids;
    for (Vertex v = 0; v < 6; ++v) ids.push_back(yes.id(v));
    no_with_same_ids.set_ids(ids);
  }
  auto certs = scheme.assign(yes);
  ASSERT_TRUE(certs.has_value());
  EXPECT_FALSE(verify_assignment(scheme, no_with_same_ids, *certs).all_accept);
}

// ---------------------------------------------------------------------------
// Minor-free schemes (Corollary 2.7).
// ---------------------------------------------------------------------------

TEST(PtMinorFree, CompleteOnShallowInstances) {
  Rng rng(17);
  PtMinorFreeScheme scheme(4);
  for (int trial = 0; trial < 10; ++trial) {
    // Stars and double-stars are P4-minor-free... a star is P3 but not P4.
    Graph g = make_star(4 + rng.index(10));
    assign_random_ids(g, rng);
    ASSERT_TRUE(scheme.holds(g));
    require_complete(scheme, g);
  }
}

TEST(PtMinorFree, SoundOnLongPaths) {
  Rng rng(18);
  PtMinorFreeScheme scheme(4);
  Graph no = make_path(8);
  assign_random_ids(no, rng);
  ASSERT_FALSE(scheme.holds(no));
  EXPECT_FALSE(scheme.assign(no).has_value());
  Graph yes = make_star(8);
  assign_random_ids(yes, rng);
  const auto tmpl = scheme.assign(yes);
  ASSERT_TRUE(tmpl.has_value());
  const auto forged = attack_soundness(scheme, no, &*tmpl, rng);
  EXPECT_FALSE(forged.has_value()) << forged->attack;
}

TEST(CtMinorFree, CompleteOnCactusOfTriangles) {
  Rng rng(19);
  CtMinorFreeScheme scheme(4);  // no cycle of length >= 4
  // Chain of triangles glued at cut vertices.
  std::vector<std::pair<Vertex, Vertex>> edges;
  const std::size_t triangles = 4;
  for (std::size_t i = 0; i < triangles; ++i) {
    const Vertex base = static_cast<Vertex>(2 * i);
    edges.emplace_back(base, base + 1);
    edges.emplace_back(base, base + 2);
    edges.emplace_back(base + 1, base + 2);
  }
  Graph g(2 * triangles + 1, edges);
  assign_random_ids(g, rng);
  ASSERT_TRUE(scheme.holds(g));
  require_complete(scheme, g);
}

TEST(CtMinorFree, CompleteOnTrees) {
  Rng rng(20);
  CtMinorFreeScheme scheme(3);  // forests only
  Graph g = make_random_tree(18, rng);
  assign_random_ids(g, rng);
  ASSERT_TRUE(scheme.holds(g));
  require_complete(scheme, g);
}

TEST(CtMinorFree, SoundOnLongCycles) {
  Rng rng(21);
  CtMinorFreeScheme scheme(4);
  Graph no = make_cycle(6);
  assign_random_ids(no, rng);
  ASSERT_FALSE(scheme.holds(no));
  EXPECT_FALSE(scheme.assign(no).has_value());
  const auto forged = attack_soundness(scheme, no, nullptr, rng);
  EXPECT_FALSE(forged.has_value());
}

TEST(CtMinorFree, SoundAgainstReplayFromCactus) {
  Rng rng(22);
  CtMinorFreeScheme scheme(4);
  // No-instance: C4 with a pendant path (7 vertices).
  Graph no(7, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {4, 5}, {5, 6}});
  assign_random_ids(no, rng);
  ASSERT_FALSE(scheme.holds(no));
  // Yes template: two triangles and a path (7 vertices).
  Graph yes(7, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 5}, {5, 6}});
  assign_random_ids(yes, rng);
  ASSERT_TRUE(scheme.holds(yes));
  const auto tmpl = scheme.assign(yes);
  ASSERT_TRUE(tmpl.has_value());
  const auto forged = attack_soundness(scheme, no, &*tmpl, rng);
  EXPECT_FALSE(forged.has_value()) << forged->attack;
}

TEST(CtMinorFree, KernelPreservesCircumferenceEmpirically) {
  // The reduction threshold 2t must preserve "circumference < t" on the block
  // families we certify (DESIGN.md §5 caveat).
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = make_bounded_treedepth_graph(6 + rng.index(10), 4, 0.5, rng);
    const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
    for (std::size_t t : {4u, 5u}) {
      const auto kz = k_reduce(inst.graph, model, 2 * t);
      EXPECT_EQ(has_cycle_minor(inst.graph, t), has_cycle_minor(kz.kernel, t))
          << inst.graph.to_string();
    }
  }
}

}  // namespace
}  // namespace lcert
