#include "src/graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/graph/connectivity.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/minors.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/graph/tree_iso.hpp"
#include "src/treedepth/exact.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

TEST(Graph, BasicAccessors) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, RejectsLoopsAndDuplicates) {
  EXPECT_THROW(Graph(2, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(Graph(2, {{0, 1}, {1, 0}}), std::invalid_argument);
  EXPECT_THROW(Graph(2, {{0, 2}}), std::out_of_range);
}

TEST(Graph, IdAssignment) {
  Graph g(3, {{0, 1}, {1, 2}});
  g.set_ids({10, 20, 30});
  EXPECT_EQ(g.id(1), 20u);
  EXPECT_EQ(g.vertex_with_id(30), 2u);
  EXPECT_THROW(g.set_ids({1, 1, 2}), std::invalid_argument);
  EXPECT_THROW(g.set_ids({0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(g.vertex_with_id(99), std::out_of_range);
}

TEST(Graph, RandomIdsAreDistinctAndPolynomial) {
  Rng rng(5);
  Graph g = make_random_tree(50, rng);
  assign_random_ids(g, rng);
  std::set<VertexId> ids;
  for (Vertex v = 0; v < 50; ++v) {
    ids.insert(g.id(v));
    EXPECT_GE(g.id(v), 1u);
    EXPECT_LE(g.id(v), 50u * 50u + 1);
  }
  EXPECT_EQ(ids.size(), 50u);
}

TEST(Graph, InducedSubgraph) {
  Graph g = make_cycle(6);
  Graph sub = g.induced({0, 1, 2, 3});
  EXPECT_EQ(sub.vertex_count(), 4u);
  EXPECT_EQ(sub.edge_count(), 3u);  // the path 0-1-2-3
  EXPECT_EQ(sub.id(0), g.id(0));
}

TEST(Graph, BfsDistances) {
  Graph g = make_path(5);
  const auto dist = g.bfs_distances(0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(Generators, PathCycleStarComplete) {
  EXPECT_EQ(make_path(7).edge_count(), 6u);
  EXPECT_EQ(make_cycle(7).edge_count(), 7u);
  EXPECT_EQ(make_star(7).edge_count(), 6u);
  EXPECT_EQ(make_complete(7).edge_count(), 21u);
  EXPECT_EQ(make_complete_bipartite(3, 4).edge_count(), 12u);
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(Generators, Caterpillar) {
  const Graph c = make_caterpillar(4, 2);
  EXPECT_EQ(c.vertex_count(), 12u);
  EXPECT_EQ(c.edge_count(), 11u);
  EXPECT_TRUE(c.is_connected());
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(42);
  for (std::size_t n : {1u, 2u, 3u, 10u, 57u, 200u}) {
    const Graph t = make_random_tree(n, rng);
    EXPECT_EQ(t.vertex_count(), n);
    EXPECT_EQ(t.edge_count(), n - 1);
    EXPECT_TRUE(t.is_connected());
  }
}

TEST(Generators, RandomRootedTreeRespectsDepth) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const RootedTree t = make_random_rooted_tree(30, 4, rng);
    EXPECT_EQ(t.size(), 30u);
    EXPECT_LE(t.height(), 4u);
  }
}

TEST(Generators, BoundedTreedepthInstanceIsValid) {
  Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = make_bounded_treedepth_graph(40, 5, 0.3, rng);
    EXPECT_TRUE(inst.graph.is_connected());
    EXPECT_LE(inst.elimination_tree.height() + 1, 5u);
    // Every edge must join an ancestor-descendant pair.
    for (auto [u, v] : inst.graph.edges())
      EXPECT_TRUE(inst.elimination_tree.is_ancestor(u, v) ||
                  inst.elimination_tree.is_ancestor(v, u));
  }
}

TEST(RootedTree, BasicStructure) {
  RootedTree t({RootedTree::kNoParent, 0, 0, 1, 1});
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.depth(4), 2u);
  EXPECT_EQ(t.height(), 2u);
  EXPECT_TRUE(t.is_ancestor(0, 4));
  EXPECT_TRUE(t.is_ancestor(1, 3));
  EXPECT_FALSE(t.is_ancestor(2, 3));
  EXPECT_EQ(t.ancestors(3), (std::vector<std::size_t>{3, 1, 0}));
  EXPECT_EQ(t.subtree(1).size(), 3u);
}

TEST(RootedTree, RejectsMalformedParentArrays) {
  EXPECT_THROW(RootedTree({0, RootedTree::kNoParent}), std::invalid_argument);  // self-loop root
  EXPECT_THROW(RootedTree({RootedTree::kNoParent, RootedTree::kNoParent}),
               std::invalid_argument);  // two roots
  EXPECT_THROW(RootedTree({1, 0}), std::invalid_argument);  // cycle
  EXPECT_THROW(RootedTree(std::vector<std::size_t>{}), std::invalid_argument);
}

TEST(RootedTree, GraphRoundTrip) {
  Rng rng(3);
  const Graph g = make_random_tree(25, rng);
  const RootedTree t = RootedTree::from_graph(g, 7);
  EXPECT_EQ(t.root(), 7u);
  const Graph back = t.to_graph();
  EXPECT_EQ(back.edge_count(), g.edge_count());
  for (auto [u, v] : g.edges()) EXPECT_TRUE(back.has_edge(u, v));
}

TEST(Connectivity, Components) {
  // Two components by construction is impossible via Graph (connected
  // builders), so build manually.
  Graph g(5, {{0, 1}, {2, 3}});
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_NE(comp[4], comp[2]);
}

TEST(Connectivity, CutVerticesOnPath) {
  const auto cuts = cut_vertices(make_path(5));
  EXPECT_FALSE(cuts[0]);
  EXPECT_TRUE(cuts[1]);
  EXPECT_TRUE(cuts[2]);
  EXPECT_TRUE(cuts[3]);
  EXPECT_FALSE(cuts[4]);
}

TEST(Connectivity, CutVerticesOnCycleNone) {
  const auto cuts = cut_vertices(make_cycle(6));
  for (bool b : cuts) EXPECT_FALSE(b);
}

TEST(Connectivity, BlockCutOfTwoTriangles) {
  // Two triangles sharing vertex 2.
  Graph g(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
  const auto bc = block_cut_decomposition(g);
  EXPECT_EQ(bc.blocks.size(), 2u);
  EXPECT_TRUE(bc.is_cut_vertex[2]);
  EXPECT_EQ(bc.blocks_of[2].size(), 2u);
  for (const auto& block : bc.blocks) EXPECT_EQ(block.size(), 3u);
}

TEST(Connectivity, BlocksOfTreeAreEdges) {
  Rng rng(8);
  const Graph t = make_random_tree(20, rng);
  const auto bc = block_cut_decomposition(t);
  EXPECT_EQ(bc.blocks.size(), 19u);
  for (const auto& block : bc.blocks) EXPECT_EQ(block.size(), 2u);
}

TEST(TreeIso, AhuRoundTrip) {
  Rng rng(15);
  for (int trial = 0; trial < 50; ++trial) {
    const RootedTree t = make_random_rooted_tree(1 + rng.index(30), 5, rng);
    const std::string enc = ahu_encoding(t);
    const RootedTree back = tree_from_ahu(enc);
    EXPECT_EQ(back.size(), t.size());
    EXPECT_EQ(ahu_encoding(back), enc);
  }
}

TEST(TreeIso, IsomorphicUnderRelabeling) {
  Rng rng(16);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.index(20);
    const Graph t = make_random_tree(n, rng);
    // Relabel the vertices with a random permutation.
    const auto perm = rng.permutation(n);
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (auto [u, v] : t.edges()) edges.emplace_back(perm[u], perm[v]);
    const Graph relabeled(n, edges);
    EXPECT_TRUE(unrooted_trees_isomorphic(t, relabeled));
  }
}

TEST(TreeIso, NonIsomorphicDetected) {
  EXPECT_FALSE(unrooted_trees_isomorphic(make_path(5), make_star(5)));
  EXPECT_FALSE(unrooted_trees_isomorphic(make_path(4), make_path(5)));
}

TEST(TreeIso, Centers) {
  EXPECT_EQ(tree_centers(make_path(5)), (std::vector<Vertex>{2}));
  EXPECT_EQ(tree_centers(make_path(6)).size(), 2u);
  EXPECT_EQ(tree_centers(make_star(9)), (std::vector<Vertex>{0}));
  EXPECT_EQ(tree_centers(Graph(1, {})), (std::vector<Vertex>{0}));
}

TEST(TreeIso, FixedPointFreeAutomorphism) {
  // Even path: reversal is FPF.
  EXPECT_TRUE(has_fixed_point_free_automorphism(make_path(6)));
  // Odd path: center is fixed.
  EXPECT_FALSE(has_fixed_point_free_automorphism(make_path(5)));
  // Star: center is fixed.
  EXPECT_FALSE(has_fixed_point_free_automorphism(make_star(6)));
  // Two stars joined at their centers: swap is FPF.
  Graph g(8, {{0, 1}, {0, 2}, {0, 3}, {4, 5}, {4, 6}, {4, 7}, {0, 4}});
  EXPECT_TRUE(has_fixed_point_free_automorphism(g));
}

TEST(TreeIso, FpfWitnessIsValidAutomorphism) {
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    // Build a tree guaranteed to have an FPF automorphism: two copies of a
    // random rooted tree joined by an edge between the roots.
    const std::size_t half = 1 + rng.index(12);
    const Graph t = make_random_tree(half, rng);
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (auto [u, v] : t.edges()) {
      edges.emplace_back(u, v);
      edges.emplace_back(u + half, v + half);
    }
    edges.emplace_back(0, half);
    const Graph doubled(2 * half, edges);
    ASSERT_TRUE(has_fixed_point_free_automorphism(doubled));
    const auto sigma = fixed_point_free_automorphism(doubled);
    ASSERT_EQ(sigma.size(), doubled.vertex_count());
    for (Vertex v = 0; v < doubled.vertex_count(); ++v) EXPECT_NE(sigma[v], v);
    for (auto [u, v] : doubled.edges()) EXPECT_TRUE(doubled.has_edge(sigma[u], sigma[v]));
  }
}

TEST(Minors, LongestPathOnKnownGraphs) {
  EXPECT_EQ(longest_path_order(make_path(6)), 6u);
  EXPECT_EQ(longest_path_order(make_cycle(6)), 6u);
  EXPECT_EQ(longest_path_order(make_star(6)), 3u);
  EXPECT_EQ(longest_path_order(make_complete(5)), 5u);
}

TEST(Minors, PathMinor) {
  EXPECT_TRUE(has_path_minor(make_path(6), 6));
  EXPECT_FALSE(has_path_minor(make_path(6), 7));
  EXPECT_FALSE(has_path_minor(make_star(10), 4));
  EXPECT_TRUE(has_path_minor(make_star(10), 3));
}

TEST(Minors, LongestCycle) {
  EXPECT_EQ(longest_cycle_order(make_path(6)), 0u);
  EXPECT_EQ(longest_cycle_order(make_cycle(8)), 8u);
  EXPECT_EQ(longest_cycle_order(make_complete(5)), 5u);
  // Two triangles sharing a vertex: longest cycle is 3.
  Graph g(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
  EXPECT_EQ(longest_cycle_order(g), 3u);
}

TEST(Minors, CycleMinor) {
  EXPECT_TRUE(has_cycle_minor(make_cycle(8), 8));
  EXPECT_TRUE(has_cycle_minor(make_cycle(8), 5));
  EXPECT_FALSE(has_cycle_minor(make_cycle(8), 9));
  EXPECT_FALSE(has_cycle_minor(make_path(9), 3));
}

TEST(Generators, SpiderAndBinaryTree) {
  const Graph spider = make_spider(3, 2);
  EXPECT_EQ(spider.vertex_count(), 7u);
  EXPECT_EQ(spider.degree(0), 3u);
  EXPECT_TRUE(spider.is_connected());
  EXPECT_EQ(longest_path_order(spider), 5u);  // leg + center + leg

  const Graph bt = make_complete_binary_tree(4);
  EXPECT_EQ(bt.vertex_count(), 15u);
  EXPECT_EQ(bt.edge_count(), 14u);
  EXPECT_EQ(bt.degree(0), 2u);
  std::size_t leaves = 0;
  for (Vertex v = 0; v < bt.vertex_count(); ++v) leaves += bt.degree(v) == 1 ? 1 : 0;
  EXPECT_EQ(leaves, 8u);
  // Complete binary tree with L levels has treedepth exactly L.
  EXPECT_EQ(exact_treedepth(bt), 4u);
}

TEST(Generators, GlueAtApex) {
  const Graph g = glue_at_apex({make_cycle(4), make_cycle(5)});
  EXPECT_EQ(g.vertex_count(), 10u);
  EXPECT_EQ(g.edge_count(), 4u + 5u + 2u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(0), 2u);
}

}  // namespace
}  // namespace lcert
