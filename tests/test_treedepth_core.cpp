#include <gtest/gtest.h>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/schemes/treedepth_core.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/treedepth/exact.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

struct Fixture {
  Graph graph;
  RootedTree model;
  std::vector<TdCore> cores;
  std::vector<Certificate> certs;

  static Fixture bounded(std::size_t n, std::size_t depth, Rng& rng) {
    auto inst = make_bounded_treedepth_graph(n, depth, 0.35, rng);
    assign_random_ids(inst.graph, rng);
    Fixture f;
    f.model = make_coherent(inst.graph, inst.elimination_tree);
    f.graph = std::move(inst.graph);
    f.cores = build_td_cores(f.graph, f.model);
    f.certs.resize(f.graph.vertex_count());
    for (Vertex v = 0; v < f.graph.vertex_count(); ++v) {
      BitWriter w;
      f.cores[v].encode(w);
      f.certs[v] = Certificate::from_writer(w);
    }
    return f;
  }

  bool verify_all(std::size_t t) const {
    for (Vertex v = 0; v < graph.vertex_count(); ++v) {
      View view = make_view(graph, certs, v);
      BitReader r = view.certificate.reader();
      const auto mine = TdCore::decode(r);
      if (!mine.has_value()) return false;
      std::vector<TdCore> nbs;
      for (const auto& nb : view.neighbors) {
        BitReader nr = nb.certificate.reader();
        auto c = TdCore::decode(nr);
        if (!c.has_value()) return false;
        nbs.push_back(std::move(*c));
      }
      if (!verify_td_core(view.as_ref(), *mine, nbs, t)) return false;
    }
    return true;
  }
};

TEST(TdCore, EncodeDecodeRoundTrip) {
  Rng rng(1);
  const auto f = Fixture::bounded(20, 4, rng);
  for (Vertex v = 0; v < f.graph.vertex_count(); ++v) {
    BitReader r = f.certs[v].reader();
    const auto decoded = TdCore::decode(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->list, f.cores[v].list);
    EXPECT_EQ(decoded->frags.size(), f.cores[v].frags.size());
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(TdCore, HonestCoresVerify) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto f = Fixture::bounded(15 + rng.index(15), 4, rng);
    EXPECT_TRUE(f.verify_all(4));
  }
}

TEST(TdCore, DepthBoundIsEnforced) {
  Rng rng(3);
  const auto f = Fixture::bounded(20, 4, rng);
  // Verify with a *smaller* bound than the model's actual depth: some vertex
  // at full depth must reject via step 1.
  EXPECT_FALSE(f.verify_all(model_depth(f.model) - 1));
}

TEST(TdCore, SuffixComparability) {
  EXPECT_TRUE(td_suffix_comparable({1, 2, 3}, {2, 3}));
  EXPECT_TRUE(td_suffix_comparable({3}, {1, 2, 3}));
  EXPECT_TRUE(td_suffix_comparable({1, 2}, {1, 2}));
  EXPECT_FALSE(td_suffix_comparable({1, 2, 3}, {1, 3}));
  EXPECT_FALSE(td_suffix_comparable({1, 2}, {2, 1}));
}

TEST(TdCore, TamperedListIsCaught) {
  Rng rng(4);
  const auto f = Fixture::bounded(18, 4, rng);
  // Swap the first two entries of some depth>=1 vertex's list.
  for (Vertex v = 0; v < f.graph.vertex_count(); ++v) {
    if (f.cores[v].depth() == 0) continue;
    auto cores = f.cores;
    std::swap(cores[v].list[0], cores[v].list[1]);
    std::vector<Certificate> certs = f.certs;
    BitWriter w;
    cores[v].encode(w);
    certs[v] = Certificate::from_writer(w);
    bool all = true;
    for (Vertex u = 0; u < f.graph.vertex_count() && all; ++u) {
      View view = make_view(f.graph, certs, u);
      BitReader r = view.certificate.reader();
      const auto mine = TdCore::decode(r);
      std::vector<TdCore> nbs;
      bool ok = mine.has_value();
      for (const auto& nb : view.neighbors) {
        BitReader nr = nb.certificate.reader();
        auto c = TdCore::decode(nr);
        if (!c.has_value()) ok = false; else nbs.push_back(std::move(*c));
      }
      all = ok && verify_td_core(view.as_ref(), *mine, nbs, 4);
    }
    EXPECT_FALSE(all) << "vertex " << v;
    break;  // one case suffices per fixture
  }
}

TEST(TdCore, FragmentDistanceTamperIsCaught) {
  Rng rng(5);
  const auto f = Fixture::bounded(18, 4, rng);
  for (Vertex v = 0; v < f.graph.vertex_count(); ++v) {
    if (f.cores[v].frags.empty() || f.cores[v].frags[0].dist == 0) continue;
    auto cores = f.cores;
    cores[v].frags[0].dist += 1;  // break the decreasing-distance chain
    std::vector<Certificate> certs = f.certs;
    BitWriter w;
    cores[v].encode(w);
    certs[v] = Certificate::from_writer(w);
    bool all = true;
    for (Vertex u = 0; u < f.graph.vertex_count() && all; ++u) {
      View view = make_view(f.graph, certs, u);
      BitReader r = view.certificate.reader();
      const auto mine = TdCore::decode(r);
      std::vector<TdCore> nbs;
      bool ok = mine.has_value();
      for (const auto& nb : view.neighbors) {
        BitReader nr = nb.certificate.reader();
        auto c = TdCore::decode(nr);
        if (!c.has_value()) ok = false; else nbs.push_back(std::move(*c));
      }
      all = ok && verify_td_core(view.as_ref(), *mine, nbs, 4);
    }
    EXPECT_FALSE(all) << "vertex " << v;
    break;
  }
}

TEST(TdCore, ExitVertexMustTouchParentLevel) {
  // Lists where the exit-vertex's promised parent (the k-suffix vertex) does
  // not exist must be rejected: drop the root's certificate and replace it by
  // one with a foreign ID list.
  Rng rng(6);
  const auto f = Fixture::bounded(14, 3, rng);
  auto cores = f.cores;
  // Change the root ID in EVERY list to a fresh ID: step 1 agreement still
  // holds (everyone agrees), but the vertex whose list should be [root] no
  // longer exists, so some exit-vertex check must fail.
  const VertexId fake = 999999;
  for (auto& c : cores) c.list.back() = fake;
  std::vector<Certificate> certs(f.graph.vertex_count());
  for (Vertex v = 0; v < f.graph.vertex_count(); ++v) {
    BitWriter w;
    cores[v].encode(w);
    certs[v] = Certificate::from_writer(w);
  }
  bool all = true;
  for (Vertex u = 0; u < f.graph.vertex_count() && all; ++u) {
    View view = make_view(f.graph, certs, u);
    BitReader r = view.certificate.reader();
    const auto mine = TdCore::decode(r);
    std::vector<TdCore> nbs;
    bool ok = mine.has_value();
    for (const auto& nb : view.neighbors) {
      BitReader nr = nb.certificate.reader();
      auto c = TdCore::decode(nr);
      if (!c.has_value()) ok = false; else nbs.push_back(std::move(*c));
    }
    all = ok && verify_td_core(view.as_ref(), *mine, nbs, 3);
  }
  EXPECT_FALSE(all);
}

}  // namespace
}  // namespace lcert
