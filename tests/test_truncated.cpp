// CertificateTruncated handling end to end (ISSUE 4 satellite).
//
// The contract: a verifier that runs off the end of a certificate throws
// CertificateTruncated; Scheme::verify_batch (and therefore the engine)
// converts exactly that exception into a rejection of that vertex and bumps
// engine/truncated_rejects. Any other exception is a scheme bug and must
// propagate. A malformed certificate must never crash verification.
#include <gtest/gtest.h>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/obs/metrics.hpp"
#include "src/schemes/spanning_tree.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

/// Certificates are a fixed 16-bit field; the verifier reads it from its own
/// certificate and every neighbor's. Default verify_batch, so the truncated
/// path under test is the shared one in Scheme.
class FixedFieldScheme final : public Scheme {
 public:
  std::string name() const override { return "test-fixed-field"; }
  bool holds(const Graph&) const override { return true; }
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override {
    std::vector<Certificate> certs(g.vertex_count());
    for (auto& c : certs) {
      BitWriter w;
      w.write(0xBEEF, 16);
      c = Certificate::from_writer(w);
    }
    return certs;
  }
  bool verify(const ViewRef& view) const override {
    BitReader r = view.certificate->reader();
    if (r.read(16) != 0xBEEF) return false;
    for (const auto& nb : view.neighbors()) {
      BitReader nr = nb.certificate->reader();
      if (nr.read(16) != 0xBEEF) return false;
    }
    return true;
  }
};

/// Throws something that is NOT CertificateTruncated: must propagate.
class AngryScheme final : public Scheme {
 public:
  std::string name() const override { return "test-angry"; }
  bool holds(const Graph&) const override { return true; }
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override {
    return std::vector<Certificate>(g.vertex_count());
  }
  bool verify(const ViewRef&) const override { throw std::logic_error("scheme bug"); }
};

Certificate truncated_mid_field(const Certificate& c, std::size_t keep_bits) {
  BitReader r = c.reader();
  BitWriter w;
  for (std::size_t i = 0; i < keep_bits; ++i) w.write_bit(r.read(1) != 0);
  return Certificate::from_writer(w);
}

class TruncatedCertificates : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::registry().set_enabled(true);
    obs::registry().reset();
  }
  void TearDown() override { obs::registry().reset(); }
};

TEST_F(TruncatedCertificates, RawVerifyThrows) {
  FixedFieldScheme scheme;
  Rng rng(1);
  Graph g = make_path(4);
  assign_random_ids(g, rng);
  auto certs = *scheme.assign(g);
  certs[1] = truncated_mid_field(certs[1], 7);  // cut inside the 16-bit field
  View view = make_view(g, certs, 1);
  EXPECT_THROW(scheme.verify(view.as_ref()), CertificateTruncated);
}

TEST_F(TruncatedCertificates, VerifyBatchRejectsAndCounts) {
  FixedFieldScheme scheme;
  Rng rng(2);
  Graph g = make_path(5);
  assign_random_ids(g, rng);
  auto certs = *scheme.assign(g);
  certs[2] = truncated_mid_field(certs[2], 9);

  const ViewCache cache(g);
  const auto binding = cache.bind(certs);
  std::vector<ViewRef> views;
  for (Vertex v = 0; v < g.vertex_count(); ++v) views.push_back(binding.view(v));
  std::vector<std::uint8_t> accept(g.vertex_count(), 0xFF);
  ASSERT_NO_THROW(scheme.verify_batch(views, accept));

  // Vertex 2 and both neighbors read the truncated field: all three reject.
  EXPECT_EQ(accept[0], 1);
  EXPECT_EQ(accept[1], 0);
  EXPECT_EQ(accept[2], 0);
  EXPECT_EQ(accept[3], 0);
  EXPECT_EQ(accept[4], 1);
  EXPECT_EQ(obs::registry().counter_value("engine/truncated_rejects"), 3u);
}

TEST_F(TruncatedCertificates, EngineRejectsWithoutCrashing) {
  FixedFieldScheme scheme;
  Rng rng(3);
  Graph g = make_random_tree(24, rng);
  assign_random_ids(g, rng);
  auto certs = *scheme.assign(g);
  certs[5] = truncated_mid_field(certs[5], 3);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    obs::registry().reset();
    const RunOptions options{threads};
    const auto outcome = verify_assignment(scheme, g, certs, options);
    EXPECT_FALSE(outcome.all_accept);
    // Vertex 5 plus each of its neighbors hit the truncation.
    EXPECT_EQ(outcome.rejecting.size(), 1 + g.degree(5));
    EXPECT_TRUE(std::find(outcome.rejecting.begin(), outcome.rejecting.end(), Vertex{5}) !=
                outcome.rejecting.end());
    EXPECT_EQ(obs::registry().counter_value("engine/truncated_rejects"),
              1 + g.degree(5));
  }
}

TEST_F(TruncatedCertificates, TruncatedSpanningTreeCertRejectedByRealScheme) {
  VertexParityScheme scheme;
  Rng rng(4);
  Graph g = make_random_tree(12, rng);
  assign_random_ids(g, rng);
  auto certs = *scheme.assign(g);
  ASSERT_GT(certs[0].bit_size, 1u);
  certs[0] = truncated_mid_field(certs[0], certs[0].bit_size / 2);
  const auto outcome = verify_assignment(scheme, g, certs);
  EXPECT_FALSE(outcome.all_accept);  // rejected, not crashed
  EXPECT_GE(obs::registry().counter_value("engine/truncated_rejects"), 1u);
}

TEST_F(TruncatedCertificates, OtherExceptionsPropagate) {
  AngryScheme scheme;
  Rng rng(5);
  Graph g = make_path(3);
  assign_random_ids(g, rng);
  const auto certs = *scheme.assign(g);
  EXPECT_THROW(verify_assignment(scheme, g, certs), std::logic_error);
}

}  // namespace
}  // namespace lcert
