#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/cert/engine.hpp"
#include "src/graph/tree_iso.hpp"
#include "src/lowerbounds/constructions.hpp"
#include "src/lowerbounds/framework.hpp"
#include "src/lowerbounds/tree_enumeration.hpp"
#include "src/schemes/automorphism_scheme.hpp"
#include "src/schemes/treedepth_scheme.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/treedepth/exact.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

// ---------------------------------------------------------------------------
// Tree counting ([42]) and encodings.
// ---------------------------------------------------------------------------

TEST(TreeEnumeration, CountsMatchOeis) {
  // Height <= 1: stars, exactly one per n. Height unbounded-enough: rooted
  // trees A000081: 1, 1, 2, 4, 9, 20, 48, 115, 286, 719.
  for (std::size_t n = 1; n <= 8; ++n)
    EXPECT_EQ(count_rooted_trees(n, 1).to_u64(), 1u) << n;
  const std::vector<std::uint64_t> a000081 = {1, 1, 2, 4, 9, 20, 48, 115, 286, 719};
  for (std::size_t n = 1; n <= 10; ++n)
    EXPECT_EQ(count_rooted_trees(n, n - 1).to_u64(), a000081[n - 1]) << n;
  // Height <= 2 on n vertices: partitions of n-1 (children sizes are a
  // partition; each child is a star). p(1..9) = 1,2,3,5,7,11,15,22,30.
  const std::vector<std::uint64_t> partitions = {1, 2, 3, 5, 7, 11, 15, 22, 30};
  for (std::size_t n = 2; n <= 10; ++n)
    EXPECT_EQ(count_rooted_trees(n, 2).to_u64(), partitions[n - 2]) << n;
}

TEST(TreeEnumeration, CountGrowsNearLinearlyInLog) {
  // log2 T_3(n) = Theta~(n): the bound curve for Theorem 2.3 must grow
  // superlinearly in log n and roughly linearly in n.
  const double l40 = log2_tree_count(40, 3);
  const double l80 = log2_tree_count(80, 3);
  const double l160 = log2_tree_count(160, 3);
  EXPECT_GT(l80, 1.5 * l40);
  EXPECT_GT(l160, 1.5 * l80);
  EXPECT_LT(l160, 4.0 * l80);  // not superpolynomial
}

TEST(TreeEnumeration, StringTreesInjective) {
  Rng rng(1);
  for (std::size_t ell : {1u, 3u, 6u}) {
    std::vector<std::vector<bool>> strings;
    for (std::uint64_t code = 0; code < (1u << ell); ++code) {
      std::vector<bool> s(ell);
      for (std::size_t i = 0; i < ell; ++i) s[i] = (code >> i) & 1;
      strings.push_back(s);
    }
    std::set<std::string> encodings;
    for (const auto& s : strings) {
      const RootedTree t = tree_from_string(s);
      EXPECT_LE(t.height(), 3u);
      encodings.insert(ahu_encoding(t));
    }
    EXPECT_EQ(encodings.size(), strings.size()) << "ell=" << ell;
  }
}

TEST(TreeEnumeration, PermutationUnranking) {
  // All ranks of S_4 give distinct valid permutations.
  std::set<std::vector<std::size_t>> perms;
  for (std::uint64_t rank = 0; rank < 24; ++rank) {
    const auto p = unrank_permutation(BigNat(rank), 4);
    ASSERT_EQ(p.size(), 4u);
    std::vector<bool> seen(4, false);
    for (std::size_t x : p) {
      ASSERT_LT(x, 4u);
      seen[x] = true;
    }
    for (bool b : seen) EXPECT_TRUE(b);
    perms.insert(p);
  }
  EXPECT_EQ(perms.size(), 24u);
  EXPECT_THROW(unrank_permutation(BigNat(24), 4), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FpfAutomorphismFamily (Theorem 2.3).
// ---------------------------------------------------------------------------

std::vector<std::vector<bool>> all_strings(std::size_t ell) {
  std::vector<std::vector<bool>> out;
  for (std::uint64_t code = 0; code < (std::uint64_t{1} << ell); ++code) {
    std::vector<bool> s(ell);
    for (std::size_t i = 0; i < ell; ++i) s[i] = (code >> i) & 1;
    out.push_back(s);
  }
  return out;
}

TEST(FpfFamily, StructureAndPromise) {
  FpfAutomorphismFamily family(4);
  const auto strings = all_strings(4);
  for (const auto& sa : strings) {
    for (const auto& sb : strings) {
      const CcInstance inst = family.build(sa, sb);
      EXPECT_TRUE(check_family_structure(family, inst));
      EXPECT_TRUE(inst.graph.is_connected());
      EXPECT_EQ(inst.graph.vertex_count(), family.instance_size());
      // The defining equivalence: FPF automorphism iff equal strings.
      EXPECT_EQ(has_fixed_point_free_automorphism(inst.graph), sa == sb);
    }
  }
}

TEST(FpfFamily, AliceViewsIndependentOfBob) {
  FpfAutomorphismFamily family(5);
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto sa = rng.bits(5);
    const auto x1 = rng.bits(5);
    const auto x2 = rng.bits(5);
    EXPECT_TRUE(alice_views_independent_of_bob(family, sa, x1, x2));
  }
}

// A deliberately undersized scheme: every vertex gets the same `bits`-bit
// fingerprint of the whole tree; verification only checks agreement. Sound
// schemes cannot look like this — the cut-and-plug auditor proves it by
// forging an accepting assignment on a no-instance, which is exactly the
// contradiction in the proof of Proposition 7.2.
class TinyFingerprintScheme final : public Scheme {
 public:
  explicit TinyFingerprintScheme(std::size_t bits) : bits_(bits) {}
  std::string name() const override { return "tiny-fingerprint"; }
  bool holds(const Graph& g) const override {
    return has_fixed_point_free_automorphism(g);
  }
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override {
    if (!holds(g)) return std::nullopt;
    std::uint64_t h = 1469598103934665603ull;
    for (char c : canonical_tree_encoding(g)) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    BitWriter w;
    w.write(h & ((std::uint64_t{1} << bits_) - 1), static_cast<unsigned>(bits_));
    return std::vector<Certificate>(g.vertex_count(), Certificate::from_writer(w));
  }
  bool verify(const ViewRef& view) const override {
    for (const auto& nb : view.neighbors())
      if (!(*nb.certificate == *view.certificate)) return false;
    return view.certificate->bit_size == bits_;
  }

 private:
  std::size_t bits_;
};

TEST(CutAndPlug, PigeonholeForgesUndersizedScheme) {
  // 2^5 = 32 strings, 2-bit boundary fingerprints: collisions guaranteed, and
  // the splice must produce a full accepting assignment on a no-instance.
  FpfAutomorphismFamily family(5);
  TinyFingerprintScheme scheme(2);
  const auto result = cut_and_plug_attack(scheme, family, all_strings(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->s_a, result->s_b);
  const CcInstance no = family.build(result->s_a, result->s_b);
  EXPECT_FALSE(scheme.holds(no.graph));
  EXPECT_TRUE(verify_assignment(scheme, no.graph, result->forged).all_accept);
}

TEST(CutAndPlug, HonestSchemeBoundarySatisfiesTheBound) {
  // The real Theta(n log n) scheme cannot collide: Proposition 7.2 then says
  // its boundary certificates carry at least log2(#strings)/r bits.
  FpfAutomorphismFamily family(4);
  FpfAutomorphismScheme scheme;
  const auto strings = all_strings(4);
  const auto result = cut_and_plug_attack(scheme, family, strings);
  EXPECT_FALSE(result.has_value());
  const std::size_t bits = max_boundary_bits(scheme, family, strings);
  const double bound = std::log2(static_cast<double>(strings.size())) /
                       static_cast<double>(family.boundary_size());
  EXPECT_GE(static_cast<double>(bits), bound);
}

// ---------------------------------------------------------------------------
// TreedepthFamily (Theorem 2.5, Lemma 7.3).
// ---------------------------------------------------------------------------

TEST(TreedepthFamily, StructureAndLemma73) {
  TreedepthFamily family(2);  // 17 vertices: exact treedepth is feasible
  ASSERT_EQ(family.string_length(), 1u);
  const auto strings = all_strings(1);
  for (const auto& sa : strings) {
    for (const auto& sb : strings) {
      const CcInstance inst = family.build(sa, sb);
      EXPECT_TRUE(check_family_structure(family, inst));
      EXPECT_TRUE(inst.graph.is_connected());
      const std::size_t td = exact_treedepth(inst.graph);
      if (sa == sb) {
        EXPECT_EQ(td, 5u);
      } else {
        EXPECT_GE(td, 6u);
      }
    }
  }
}

TEST(TreedepthFamily, WitnessModelIsValidDepth5) {
  TreedepthFamily family(3);
  const auto s = std::vector<bool>(family.string_length(), false);
  const CcInstance inst = family.build(s, s);
  const auto witness = family.witness_model(inst.graph);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(is_valid_model(inst.graph, *witness));
  EXPECT_EQ(model_depth(*witness), 5u);
  // No witness on a no-instance.
  auto s2 = s;
  s2[0] = !s2[0];
  const CcInstance no = family.build(s, s2);
  EXPECT_FALSE(family.witness_model(no.graph).has_value());
}

TEST(TreedepthFamily, AliceViewsIndependentOfBob) {
  TreedepthFamily family(3);
  Rng rng(3);
  const std::size_t ell = family.string_length();
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_TRUE(
        alice_views_independent_of_bob(family, rng.bits(ell), rng.bits(ell), rng.bits(ell)));
  }
}

TEST(TreedepthFamily, RealSchemeCertifiesYesInstances) {
  TreedepthFamily family(3);
  const auto s = std::vector<bool>(family.string_length(), true);
  const CcInstance inst = family.build(s, s);
  TreedepthScheme scheme(5, [&family](const Graph& g) { return family.witness_model(g); });
  const auto certs = scheme.assign(inst.graph);
  ASSERT_TRUE(certs.has_value());
  EXPECT_TRUE(verify_assignment(scheme, inst.graph, *certs).all_accept);
}

TEST(TreedepthFamily, SubdivisionRaisesThreshold) {
  // The k > 5 extension: one subdivision round lengthens the cycles to 12,
  // so yes-instances have treedepth 1 + td(C_12) = 6 and no-instances more.
  TreedepthFamily family(2, /*subdivisions=*/1);
  EXPECT_EQ(family.yes_treedepth(), 6u);
  const std::vector<bool> zero{false}, one{true};
  const CcInstance yes = family.build(zero, zero);
  EXPECT_TRUE(check_family_structure(family, yes));
  EXPECT_TRUE(yes.graph.is_connected());
  EXPECT_EQ(yes.graph.vertex_count(), family.instance_size());
  // Witness model exists and has the announced depth.
  const auto witness = family.witness_model(yes.graph);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(is_valid_model(yes.graph, *witness));
  EXPECT_EQ(model_depth(*witness), family.yes_treedepth());
  // No-instances do not decompose into short cycles.
  const CcInstance no = family.build(zero, one);
  EXPECT_FALSE(family.witness_model(no.graph).has_value());
  // The graphs stay small enough at n=2 to check exactly:
  // 17 + 8 = 25 vertices is beyond the cheap exact range, so validate via the
  // witness + cops-and-robber on the yes instance's cycles instead: every
  // component after removing the apex is a C_12 of treedepth 5.
}

TEST(TreedepthFamily, SubdividedViewsStillIndependent) {
  TreedepthFamily family(3, 2);
  Rng rng(44);
  const std::size_t ell = family.string_length();
  for (int trial = 0; trial < 4; ++trial)
    EXPECT_TRUE(
        alice_views_independent_of_bob(family, rng.bits(ell), rng.bits(ell), rng.bits(ell)));
}

TEST(TreedepthFamily, ImpliedBoundIsLogarithmic) {
  // ell / r = log2(n!) / (4n+1) = Theta(log n): the Theorem 2.5 shape.
  std::vector<double> ratio;
  for (std::size_t n : {8u, 64u, 512u}) {
    TreedepthFamily family(n);
    ratio.push_back(static_cast<double>(family.string_length()) /
                    static_cast<double>(family.boundary_size()));
  }
  EXPECT_GT(ratio[1], ratio[0] * 1.5);
  EXPECT_GT(ratio[2], ratio[1] * 1.3);
  EXPECT_LT(ratio[2], ratio[1] * 3.0);  // log-like, not polynomial
}

}  // namespace
}  // namespace lcert
