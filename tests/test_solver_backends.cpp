// The solve/ layer above the per-box exactness tests (test_uop_feasibility):
// the MiniCdcl core itself, the SAT backend's witness contract, the backend
// name/alias mappings, the registry-wide bit-identity sweep (every scheme x
// every backend x 1/4/8 threads reproduces assign() exactly), and the
// AttackStrategy plan — in particular the sat-run forgery search, which must
// find nothing on sound schemes and report *why* (every rooting exhausted).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/cert/audit.hpp"
#include "src/cert/prove.hpp"
#include "src/schemes/registry.hpp"
#include "src/solve/sat.hpp"
#include "src/solve/solver.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

// --- MiniCdcl ---------------------------------------------------------------

TEST(MiniCdcl, UnitPropagationAndConflicts) {
  solve::MiniCdcl sat;
  const std::size_t a = sat.new_var();
  const std::size_t b = sat.new_var();
  sat.add_clause({solve::MiniCdcl::pos(a)});                           // a
  sat.add_clause({solve::MiniCdcl::neg(a), solve::MiniCdcl::pos(b)});  // a -> b
  ASSERT_TRUE(sat.solve());
  EXPECT_TRUE(sat.value(a));
  EXPECT_TRUE(sat.value(b));

  sat.reset();
  const std::size_t c = sat.new_var();
  sat.add_clause({solve::MiniCdcl::pos(c)});
  sat.add_clause({solve::MiniCdcl::neg(c)});
  EXPECT_FALSE(sat.solve());

  sat.reset();
  sat.add_clause({});  // empty clause: trivially unsat
  EXPECT_FALSE(sat.solve());
}

TEST(MiniCdcl, CardinalityBounds) {
  // Exactly 2 of 4 true, with var 0 forced false: model must pick 2 of the
  // remaining 3.
  solve::MiniCdcl sat;
  std::vector<std::size_t> vars;
  for (int i = 0; i < 4; ++i) vars.push_back(sat.new_var());
  sat.add_cardinality(vars, 2, 2);
  sat.add_clause({solve::MiniCdcl::neg(vars[0])});
  ASSERT_TRUE(sat.solve());
  int trues = 0;
  for (const std::size_t v : vars) trues += sat.value(v) ? 1 : 0;
  EXPECT_EQ(trues, 2);
  EXPECT_FALSE(sat.value(vars[0]));

  // lo > population is unsat outright.
  sat.reset();
  vars.clear();
  for (int i = 0; i < 3; ++i) vars.push_back(sat.new_var());
  sat.add_cardinality(vars, 4, 10);
  EXPECT_FALSE(sat.solve());

  // Interacting cardinalities: >=2 of {a,b,c} but <=1 of {a,b} forces c.
  sat.reset();
  const std::size_t a = sat.new_var();
  const std::size_t b = sat.new_var();
  const std::size_t c = sat.new_var();
  sat.add_cardinality({a, b, c}, 2, 3);
  sat.add_cardinality({a, b}, 0, 1);
  ASSERT_TRUE(sat.solve());
  EXPECT_TRUE(sat.value(c));
}

TEST(MiniCdcl, DeterministicModel) {
  // Same encode -> same trail -> same model, a determinism-contract pin.
  std::vector<bool> first;
  for (int round = 0; round < 2; ++round) {
    solve::MiniCdcl sat;
    std::vector<std::size_t> vars;
    for (int i = 0; i < 6; ++i) vars.push_back(sat.new_var());
    sat.add_cardinality(vars, 2, 4);
    sat.add_clause({solve::MiniCdcl::neg(vars[1]), solve::MiniCdcl::pos(vars[4])});
    sat.add_cardinality({vars[0], vars[2], vars[5]}, 1, 1);
    ASSERT_TRUE(sat.solve());
    std::vector<bool> model;
    for (const std::size_t v : vars) model.push_back(sat.value(v));
    if (round == 0)
      first = model;
    else
      EXPECT_EQ(first, model);
  }
}

// --- backend names and the deprecated tier alias ----------------------------

TEST(SolverBackendNames, RoundTripAndListing) {
  for (const auto& info : solve::SolverFactory::registry()) {
    EXPECT_STREQ(solve::backend_name(info.backend), info.name);
    const auto parsed = solve::parse_backend(info.name);
    ASSERT_TRUE(parsed.has_value()) << info.name;
    EXPECT_EQ(*parsed, info.backend);
    EXPECT_NE(solve::backend_listing().find(info.name), std::string::npos);
  }
  EXPECT_FALSE(solve::parse_backend("dinic").has_value());
  EXPECT_FALSE(solve::parse_backend("").has_value());
}

TEST(SolverBackendNames, TierAliasMatchesTheOldNumbering) {
  // The numbering the deprecated --feas-tier-max flag promised: 0 was the
  // flow-only reference, 1 greedy, 2 the warm default. Everything else used
  // to be accepted silently — now it must be rejected (nullopt -> exit 2).
  EXPECT_EQ(solve::backend_from_tier(0), solve::Backend::kColdFlow);
  EXPECT_EQ(solve::backend_from_tier(1), solve::Backend::kGreedy);
  EXPECT_EQ(solve::backend_from_tier(2), solve::Backend::kWarmFlow);
  EXPECT_FALSE(solve::backend_from_tier(3).has_value());
  EXPECT_FALSE(solve::backend_from_tier(7).has_value());
  EXPECT_FALSE(solve::backend_from_tier(-1).has_value());
}

// --- witness contract -------------------------------------------------------

// decide_witness must agree with decide and hand back a *valid* witness —
// in-mask states whose counts land in the box — for every backend, including
// the SAT model path (which may differ from the pristine assignment but must
// still satisfy the box).
TEST(SolverWitness, EveryBackendProducesValidWitnesses) {
  Rng rng(424242);
  for (const auto& info : solve::SolverFactory::registry()) {
    const auto feas = solve::SolverFactory::make(info.backend);
    for (int trial = 0; trial < 800; ++trial) {
      const std::size_t k = rng.uniform(1, 4);
      const std::size_t m = rng.uniform(0, 6);
      std::vector<std::uint64_t> masks(m);
      for (auto& mask : masks) mask = rng.uniform(0, (std::uint64_t{1} << k) - 1);
      IntervalBox box(k);
      for (std::size_t q = 0; q < k; ++q) {
        box.lo[q] = rng.uniform(0, 2);
        box.hi[q] = rng.coin(0.4) ? IntervalBox::kUnbounded : rng.uniform(0, 4);
      }
      feas->begin(masks, k);
      const bool decided = feas->decide(box);
      std::vector<std::size_t> witness;
      ASSERT_EQ(feas->decide_witness(box, witness), decided)
          << info.name << " trial " << trial;
      if (!decided) continue;
      ASSERT_EQ(witness.size(), m) << info.name << " trial " << trial;
      std::vector<std::size_t> counts(k, 0);
      for (std::size_t i = 0; i < m; ++i) {
        ASSERT_LT(witness[i], k);
        ASSERT_TRUE(masks[i] >> witness[i] & 1u)
            << info.name << " trial " << trial << " child " << i;
        ++counts[witness[i]];
      }
      for (std::size_t q = 0; q < k; ++q) {
        EXPECT_GE(counts[q], box.lo[q]) << info.name << " trial " << trial;
        if (box.hi[q] != IntervalBox::kUnbounded)
          EXPECT_LE(counts[q], box.hi[q]) << info.name << " trial " << trial;
      }
    }
  }
}

// --- registry-wide bit-identity sweep ---------------------------------------

// The acceptance gate of the whole seam: on every registered scheme, every
// backend reproduces assign()'s certificates bit-for-bit at 1, 4 and 8
// threads. (Solver choice affects *decisions* only; assignments always come
// from the pristine extraction.)
TEST(SolverRegistrySweep, AllSchemesAllBackendsBitIdenticalToAssign) {
  for (const auto& entry : scheme_registry()) {
    const auto scheme = entry.make();
    Rng rng(6100);
    const Graph g = entry.family.yes_instance(20, rng);
    const auto baseline = scheme->assign(g);
    ASSERT_TRUE(baseline.has_value()) << entry.key;
    for (const auto& info : solve::SolverFactory::registry()) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
        RunOptions options;
        options.num_threads = threads;
        options.solver = info.backend;
        const ProveResult result = prove_assignment(*scheme, g, options);
        ASSERT_TRUE(result.certificates.has_value())
            << entry.key << " solver=" << info.name << " threads=" << threads;
        ASSERT_EQ(baseline->size(), result.certificates->size()) << entry.key;
        for (std::size_t v = 0; v < baseline->size(); ++v)
          ASSERT_TRUE((*baseline)[v] == (*result.certificates)[v])
              << entry.key << " solver=" << info.name << " threads=" << threads
              << " vertex " << v;
      }
    }
  }
}

// --- the attack-strategy plan ----------------------------------------------

TEST(AttackPlan, StandardPlanDeclaresBudgetsFromOptions) {
  RunOptions options;
  options.random_trials = 17;
  options.mutation_trials = 5;
  const auto plan = standard_attack_plan(options);
  ASSERT_GE(plan.size(), 6u);
  std::vector<std::string> names;
  for (const auto& s : plan) names.push_back(s.name);
  EXPECT_EQ(names.front(), "random");
  EXPECT_EQ(names.back(), "sat-run");  // draws no rng, must run last
  EXPECT_EQ(plan.front().budget, 17u);
  for (const auto& s : plan)
    if (s.name == "bit-flip") EXPECT_EQ(s.budget, 5u);
}

// Every scheme in the registry must survive the full plan on its own
// no-instance — and the per-strategy outcomes must account for the whole
// plan, with the sat-run row explaining itself either way (exhausted
// rootings, inapplicable surface, or a budget cap), never silently absent.
TEST(AttackPlan, AuditReportNamesEveryStrategyAndFindsNoForgery) {
  for (const auto& entry : scheme_registry()) {
    const auto scheme = entry.make();
    Rng rng(97);
    const Graph yes = entry.family.yes_instance(14, rng);
    const auto tmpl = scheme->assign(yes);
    const Graph no = entry.family.no_instance(14, rng);
    RunOptions options;
    options.random_trials = 8;
    options.mutation_trials = 8;
    const SoundnessAuditReport report =
        run_soundness_audit(*scheme, no, tmpl ? &*tmpl : nullptr, rng, options);
    EXPECT_FALSE(report.forgery.has_value()) << entry.key;
    ASSERT_EQ(report.outcomes.size(), standard_attack_plan(options).size()) << entry.key;
    bool saw_sat_run = false;
    for (const AttackOutcome& out : report.outcomes) {
      EXPECT_FALSE(out.forged) << entry.key << " " << out.strategy;
      EXPECT_LE(out.trials, out.budget) << entry.key << " " << out.strategy;
      if (out.strategy == "sat-run") {
        saw_sat_run = true;
        EXPECT_FALSE(out.detail.empty()) << entry.key;
      }
    }
    EXPECT_TRUE(saw_sat_run) << entry.key;
  }
}

// The compatibility wrapper still answers the one-shot question.
TEST(AttackPlan, AttackSoundnessWrapperAgrees) {
  const auto entry = scheme_registry().front();  // registry returns by value
  const auto scheme = entry.make();
  Rng rng(7);
  const Graph no = entry.family.no_instance(16, rng);
  EXPECT_FALSE(attack_soundness(*scheme, no, nullptr, rng).has_value());
}

}  // namespace
}  // namespace lcert
