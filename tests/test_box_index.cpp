// BoxIndex determinism contract (DESIGN.md §16): the index must answer
// first_containing with the identical first-match index a linear sweep
// produces, and its feasibility candidate cursor must preserve the first
// feasible box under every solver backend. These tests pin the contract on
// random box sets, on every library automaton, and on the degenerate cases
// (empty index, empty cursor, arity mismatch).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/automata/box_index.hpp"
#include "src/automata/library.hpp"
#include "src/automata/presburger.hpp"
#include "src/solve/solver.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

std::vector<IntervalBox> random_boxes(Rng& rng, std::size_t n, std::size_t k) {
  std::vector<IntervalBox> boxes;
  boxes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    IntervalBox b(k);
    for (std::size_t q = 0; q < k; ++q) {
      b.lo[q] = rng.index(6);
      b.hi[q] = rng.coin(0.3) ? IntervalBox::kUnbounded
                              : b.lo[q] + rng.index(6);
    }
    boxes.push_back(std::move(b));
  }
  return boxes;
}

TEST(BoxIndex, EmptyIndexAnswersNpos) {
  const BoxIndex idx{std::vector<IntervalBox>{}};
  EXPECT_EQ(idx.size(), 0u);
  const std::size_t counts[1] = {0};
  const auto hit = idx.first_containing(counts, 0);
  EXPECT_EQ(hit.index, BoxIndex::npos);
  EXPECT_EQ(hit.probes, 0u);
  BoxIndex::Cursor cur;  // default-constructed cursor is exhausted
  EXPECT_EQ(cur.next(), BoxIndex::npos);
}

TEST(BoxIndex, ArityMismatchThrows) {
  const BoxIndex idx(std::vector<IntervalBox>{IntervalBox(3)});
  const std::size_t counts[2] = {0, 0};
  EXPECT_THROW(idx.first_containing(counts, 2), std::invalid_argument);
  EXPECT_THROW(idx.containment_candidates(counts, 2), std::invalid_argument);
  std::vector<IntervalBox> mixed{IntervalBox(2), IntervalBox(3)};
  EXPECT_THROW(BoxIndex{std::move(mixed)}, std::invalid_argument);
}

TEST(BoxIndex, FirstContainingMatchesLinearOnRandomSets) {
  Rng rng(913);
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t k = 1 + rng.index(6);
    const std::size_t n = 1 + rng.index(80);
    const BoxIndex idx(random_boxes(rng, n, k));
    std::vector<std::size_t> counts(k);
    for (int probe = 0; probe < 30; ++probe) {
      for (std::size_t q = 0; q < k; ++q) counts[q] = rng.index(14);
      const auto lin = idx.first_containing_linear(counts.data(), k);
      const auto fast = idx.first_containing(counts.data(), k);
      EXPECT_EQ(fast.index, lin.index) << "trial " << trial;
      // The filter may only shrink the probe count, never change the answer.
      EXPECT_LE(fast.probes, lin.probes);
    }
  }
}

TEST(BoxIndex, ContainmentCandidatesAreASuperset) {
  Rng rng(417);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t k = 1 + rng.index(4);
    const std::size_t n = 1 + rng.index(40);
    const BoxIndex idx(random_boxes(rng, n, k));
    std::vector<std::size_t> counts(k);
    for (std::size_t q = 0; q < k; ++q) counts[q] = rng.index(12);
    std::vector<bool> candidate(idx.size(), false);
    auto cur = idx.containment_candidates(counts.data(), k);
    std::size_t prev = 0;
    bool first = true;
    for (std::size_t i = cur.next(); i != BoxIndex::npos; i = cur.next()) {
      if (!first) EXPECT_GT(i, prev) << "cursor must ascend";
      prev = i;
      first = false;
      ASSERT_LT(i, idx.size());
      candidate[i] = true;
    }
    for (std::size_t i = 0; i < idx.size(); ++i)
      if (idx.box(i).contains(counts))
        EXPECT_TRUE(candidate[i]) << "containing box " << i << " filtered out";
  }
}

TEST(BoxIndex, DecideFirstMatchesFullSweepOnEveryBackend) {
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t k = 1 + rng.index(5);
    const std::size_t n = 1 + rng.index(20);
    const BoxIndex idx(random_boxes(rng, n, k));
    const std::size_t m = rng.index(5);
    const std::uint64_t keep = (std::uint64_t{1} << k) - 1;
    std::vector<std::uint64_t> masks(m);
    for (auto& mask : masks) mask = rng.uniform(0, keep);

    for (const auto& info : solve::SolverFactory::registry()) {
      const auto feas = solve::SolverFactory::make(info.backend);
      feas->begin(masks, k);
      std::size_t sweep_first = BoxIndex::npos;
      for (std::size_t i = 0; i < idx.size(); ++i)
        if (feas->decide(idx.box(i))) {
          sweep_first = i;
          break;
        }
      EXPECT_EQ(feas->decide_first(idx), sweep_first)
          << info.name << " trial " << trial;
    }
  }
}

TEST(BoxIndex, SupplyCountsChildrenPerState) {
  const auto feas = solve::SolverFactory::make(solve::kDefaultBackend);
  const std::vector<std::uint64_t> masks = {0b101, 0b011, 0b100};
  feas->begin(masks, 3);
  const auto supply = feas->supply();
  ASSERT_EQ(supply.size(), 3u);
  EXPECT_EQ(supply[0], 2u);
  EXPECT_EQ(supply[1], 1u);
  EXPECT_EQ(supply[2], 2u);
}

TEST(BoxIndex, FeasibilityCandidatesKeepEveryFeasibleBox) {
  Rng rng(5150);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t k = 1 + rng.index(4);
    const std::size_t n = 1 + rng.index(30);
    const BoxIndex idx(random_boxes(rng, n, k));
    const std::size_t m = rng.index(5);
    const std::uint64_t keep = (std::uint64_t{1} << k) - 1;
    std::vector<std::uint64_t> masks(m);
    for (auto& mask : masks) mask = rng.uniform(0, keep);

    const auto feas = solve::SolverFactory::make(solve::Backend::kColdFlow);
    feas->begin(masks, k);
    std::vector<bool> candidate(idx.size(), false);
    auto cur = idx.feasibility_candidates(feas->supply().data(), m);
    for (std::size_t i = cur.next(); i != BoxIndex::npos; i = cur.next()) {
      ASSERT_LT(i, idx.size());
      candidate[i] = true;
    }
    for (std::size_t i = 0; i < idx.size(); ++i)
      if (feas->decide(idx.box(i)))
        EXPECT_TRUE(candidate[i]) << "feasible box " << i << " filtered out";
  }
}

// Every library automaton, every state: indexed answers equal the linear
// sweep on an exhaustive small-count grid — the exact probe pattern the
// verifier feeds the index.
TEST(BoxIndex, LibraryAutomataExhaustiveFirstMatchIdentity) {
  for (const auto& entry : standard_tree_automata()) {
    const std::size_t k = entry.automaton.state_count;
    for (std::size_t q = 0; q < k; ++q) {
      const BoxIndex idx(entry.automaton.transition(q).to_boxes(k));
      std::vector<std::size_t> counts(k, 0);
      std::size_t probes_checked = 0;
      while (true) {
        const auto lin = idx.first_containing_linear(counts.data(), k);
        const auto fast = idx.first_containing(counts.data(), k);
        ASSERT_EQ(fast.index, lin.index)
            << entry.name << " state " << q << " probe " << probes_checked;
        ++probes_checked;
        std::size_t d = 0;  // odometer over [0,5]^k, capped to bound runtime
        while (d < k && counts[d] == 5) counts[d++] = 0;
        if (d == k || probes_checked > 50000) break;
        ++counts[d];
      }
    }
  }
}

}  // namespace
}  // namespace lcert
