#include "src/graph/io.hpp"

#include <gtest/gtest.h>

#include "src/graph/generators.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

TEST(GraphIo, ParseBasic) {
  const Graph g = parse_edge_list("n 3\ne 0 1\ne 1 2\n");
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.id(0), 1u);
}

TEST(GraphIo, ParseWithIdsAndComments) {
  const Graph g = parse_edge_list(
      "# a triangle\n"
      "n 3\n"
      "id 0 10\n"
      "id 2 30\n"
      "\n"
      "e 0 1\ne 1 2\ne 0 2\n");
  EXPECT_EQ(g.id(0), 10u);
  EXPECT_EQ(g.id(1), 2u);  // default kept
  EXPECT_EQ(g.id(2), 30u);
}

TEST(GraphIo, ParseErrors) {
  EXPECT_THROW(parse_edge_list(""), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("e 0 1\n"), std::invalid_argument);          // missing n
  EXPECT_THROW(parse_edge_list("n 2\nn 2\n"), std::invalid_argument);       // duplicate n
  EXPECT_THROW(parse_edge_list("n 0\n"), std::invalid_argument);            // empty graph
  EXPECT_THROW(parse_edge_list("n 2\nx 0 1\n"), std::invalid_argument);     // bad directive
  EXPECT_THROW(parse_edge_list("n 2\ne 0\n"), std::invalid_argument);       // short edge
  EXPECT_THROW(parse_edge_list("n 2\ne 0 5\n"), std::out_of_range);         // endpoint
  EXPECT_THROW(parse_edge_list("n 2\nid 5 9\n"), std::invalid_argument);    // id range
}

TEST(GraphIo, RoundTripRandom) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_random_connected(2 + rng.index(20), 0.3, rng);
    assign_random_ids(g, rng);
    const Graph back = parse_edge_list(to_edge_list(g));
    EXPECT_EQ(back.vertex_count(), g.vertex_count());
    EXPECT_EQ(back.edge_count(), g.edge_count());
    for (auto [u, v] : g.edges()) EXPECT_TRUE(back.has_edge(u, v));
    for (Vertex v = 0; v < g.vertex_count(); ++v) EXPECT_EQ(back.id(v), g.id(v));
  }
}

TEST(GraphIo, DotContainsAllEdges) {
  const Graph g = make_cycle(4);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph lcert {"), std::string::npos);
  EXPECT_NE(dot.find("v0 -- v1"), std::string::npos);
  EXPECT_NE(dot.find("v0 -- v3"), std::string::npos);  // edges render with u < v
  EXPECT_NE(dot.find("label=\"1\""), std::string::npos);
}

}  // namespace
}  // namespace lcert
