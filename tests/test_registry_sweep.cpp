// The uniform audit: every registered scheme is run through the same
// completeness battery on generated yes-instances and the same adversarial
// soundness battery on no-instances. Adding a scheme to the registry
// automatically subjects it to this sweep.
#include <gtest/gtest.h>

#include "src/cert/audit.hpp"
#include "src/cert/engine.hpp"
#include "src/graph/io.hpp"
#include "src/schemes/registry.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

class RegistrySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RegistrySweep, CompletenessOnGeneratedYesInstances) {
  const auto entry = scheme_registry().at(GetParam());
  const auto scheme = entry.make();
  Rng rng(3000 + GetParam());
  for (std::size_t n : {8u, 16u, 24u}) {
    const Graph g = entry.family.yes_instance(n, rng);
    ASSERT_TRUE(scheme->holds(g)) << entry.key << " generator produced a no-instance";
    require_complete(*scheme, g);
  }
}

TEST_P(RegistrySweep, ProverRefusesNoInstances) {
  const auto entry = scheme_registry().at(GetParam());
  const auto scheme = entry.make();
  Rng rng(4000 + GetParam());
  const Graph g = entry.family.no_instance(12, rng);
  ASSERT_FALSE(scheme->holds(g)) << entry.key << " generator produced a yes-instance";
  EXPECT_FALSE(scheme->assign(g).has_value()) << entry.key;
}

TEST_P(RegistrySweep, SoundnessUnderFullAttackBattery) {
  const auto entry = scheme_registry().at(GetParam());
  const auto scheme = entry.make();
  Rng rng(5000 + GetParam());
  const Graph no = entry.family.no_instance(12, rng);
  ASSERT_FALSE(scheme->holds(no));
  // Template certificates from a yes-instance of the same size, when the
  // generator cooperates.
  std::optional<std::vector<Certificate>> tmpl;
  for (std::size_t attempt = 0; attempt < 4 && !tmpl.has_value(); ++attempt) {
    const Graph yes = entry.family.yes_instance(no.vertex_count(), rng);
    if (yes.vertex_count() == no.vertex_count()) tmpl = scheme->assign(yes);
  }
  const auto forged =
      attack_soundness(*scheme, no, tmpl.has_value() ? &*tmpl : nullptr, rng);
  EXPECT_FALSE(forged.has_value())
      << entry.key << ": attack '" << forged->attack << "' forged acceptance";
}

TEST_P(RegistrySweep, InstancesSurviveEdgeListRoundTrip) {
  const auto entry = scheme_registry().at(GetParam());
  const auto scheme = entry.make();
  Rng rng(6000 + GetParam());
  const Graph g = entry.family.yes_instance(10, rng);
  const Graph back = parse_edge_list(to_edge_list(g));
  ASSERT_EQ(back.vertex_count(), g.vertex_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) EXPECT_EQ(back.id(v), g.id(v));
  // The round-tripped instance certifies identically.
  const auto a = scheme->assign(g);
  const auto b = scheme->assign(back);
  ASSERT_EQ(a.has_value(), b.has_value());
  if (a.has_value()) {
    EXPECT_TRUE(verify_assignment(*scheme, back, *a).all_accept) << entry.key;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RegistrySweep,
                         ::testing::Range<std::size_t>(0, scheme_registry().size()));

TEST(Registry, FindByKey) {
  EXPECT_NO_THROW(find_scheme("vertex-parity"));
  EXPECT_NO_THROW(find_scheme("mso-leaves4"));
  EXPECT_THROW(find_scheme("nope"), std::out_of_range);
  EXPECT_EQ(scheme_registry().size(), 14u);
}

}  // namespace
}  // namespace lcert
