// The UOP per-vertex feasibility core (DESIGN.md §12/§15): edge cases of the
// pristine uop_assign_children_masked solver, and the exactness contract of
// the FeasibilitySolver backends — every backend must produce the same
// boolean as brute-force enumeration, and the backend-filtered extraction
// must land on the same box (hence the same assignment) as the pristine scan.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/automata/presburger.hpp"
#include "src/automata/uop_automaton.hpp"
#include "src/solve/solver.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

// Brute force over all assignments: each child picks a state from its mask,
// counts must land in the box. The ground truth every path is judged against.
bool brute_force_feasible(const std::vector<std::uint64_t>& masks,
                          const IntervalBox& box, std::size_t k) {
  const std::size_t m = masks.size();
  std::vector<std::size_t> pick(m, 0);
  std::vector<std::size_t> counts(k, 0);
  const auto valid = [&]() {
    for (std::size_t q = 0; q < k; ++q) counts[q] = 0;
    for (std::size_t i = 0; i < m; ++i) ++counts[pick[i]];
    for (std::size_t q = 0; q < k; ++q) {
      if (counts[q] < box.lo[q]) return false;
      if (box.hi[q] != IntervalBox::kUnbounded && counts[q] > box.hi[q]) return false;
    }
    return true;
  };
  // Odometer over the k^m grid, skipping states outside each child's mask.
  while (true) {
    bool in_masks = true;
    for (std::size_t i = 0; i < m; ++i)
      if ((masks[i] >> pick[i] & 1u) == 0) in_masks = false;
    if (in_masks && valid()) return true;
    std::size_t i = 0;
    while (i < m && ++pick[i] == k) pick[i++] = 0;
    if (i == m) return false;
  }
}

std::vector<std::unique_ptr<solve::FeasibilitySolver>> all_backends() {
  std::vector<std::unique_ptr<solve::FeasibilitySolver>> backends;
  for (const auto& info : solve::SolverFactory::registry())
    backends.push_back(solve::SolverFactory::make(info.backend));
  return backends;
}

TEST(UopAssignMasked, EmptyChildSpan) {
  std::vector<std::uint64_t> no_children;
  std::vector<std::size_t> assignment{99};  // must be cleared on success
  IntervalBox relaxed(3);
  EXPECT_TRUE(uop_assign_children_masked(no_children, relaxed, 3, assignment));
  EXPECT_TRUE(assignment.empty());

  IntervalBox demanding(3);
  demanding.lo[1] = 1;  // one child required, none exist
  EXPECT_FALSE(uop_assign_children_masked(no_children, demanding, 3, assignment));
}

TEST(UopAssignMasked, StateCount64Boundary) {
  // Bit 63 is a real state at k == 64; the mask-truncation shift must not
  // overflow. Two children forced onto the two top states by lower bounds.
  const std::size_t k = 64;
  std::vector<std::uint64_t> masks{std::uint64_t{1} << 63,
                                   (std::uint64_t{1} << 63) | (std::uint64_t{1} << 62)};
  IntervalBox box(k);
  box.lo[62] = 1;
  std::vector<std::size_t> assignment;
  ASSERT_TRUE(uop_assign_children_masked(masks, box, k, assignment));
  EXPECT_EQ(assignment[0], 63u);
  EXPECT_EQ(assignment[1], 62u);

  for (const auto& feas : all_backends()) {
    feas->begin(masks, k);
    EXPECT_TRUE(feas->decide(box)) << solve::backend_name(feas->backend());
  }
  box.lo[61] = 1;  // no child can supply state 61
  for (const auto& feas : all_backends()) {
    feas->begin(masks, k);
    EXPECT_FALSE(feas->decide(box)) << solve::backend_name(feas->backend());
  }
  EXPECT_FALSE(uop_assign_children_masked(masks, box, k, assignment));
}

TEST(UopAssignMasked, JustInfeasibleBox) {
  // Three children confined to state 0: hi[0] == 3 fits exactly, 2 is one
  // short; lo_sum == 4 over three children overshoots by one.
  std::vector<std::uint64_t> masks{1, 1, 1};
  std::vector<std::size_t> assignment;
  IntervalBox fits(2);
  fits.hi[0] = 3;
  EXPECT_TRUE(uop_assign_children_masked(masks, fits, 2, assignment));
  IntervalBox tight(2);
  tight.hi[0] = 2;
  EXPECT_FALSE(uop_assign_children_masked(masks, tight, 2, assignment));
  IntervalBox over(2);
  over.lo[0] = 3;
  over.lo[1] = 1;
  EXPECT_FALSE(uop_assign_children_masked(masks, over, 2, assignment));
}

// The exactness contract: for every registered backend, decide() equals
// brute force equals the pristine solver — and when feasible, the pristine
// solver's assignment is valid.
TEST(FeasibilitySolverBackends, RandomizedCrossCheckAgainstBruteForce) {
  Rng rng(20260809);
  const auto backends = all_backends();
  for (int trial = 0; trial < 3000; ++trial) {
    const std::size_t k = rng.uniform(1, 4);
    const std::size_t m = rng.uniform(0, 6);
    std::vector<std::uint64_t> masks(m);
    for (auto& mask : masks)
      mask = rng.uniform(0, (std::uint64_t{1} << k) - 1);  // empty masks included
    // A batch of boxes against one begin(): exercises the warm-network reuse
    // and the SAT backend's per-vertex variable layout.
    std::vector<IntervalBox> boxes;
    const std::size_t box_count = rng.uniform(1, 4);
    for (std::size_t b = 0; b < box_count; ++b) {
      IntervalBox box(k);
      for (std::size_t q = 0; q < k; ++q) {
        box.lo[q] = rng.uniform(0, 3);
        box.hi[q] = rng.coin(0.4) ? IntervalBox::kUnbounded : rng.uniform(0, 4);
      }
      boxes.push_back(box);
    }
    for (const auto& feas : backends) feas->begin(masks, k);
    for (const IntervalBox& box : boxes) {
      const bool truth = brute_force_feasible(masks, box, k);
      std::vector<std::size_t> assignment;
      ASSERT_EQ(uop_assign_children_masked(masks, box, k, assignment), truth)
          << "pristine solver diverged at trial " << trial;
      for (const auto& feas : backends)
        ASSERT_EQ(feas->decide(box), truth)
            << solve::backend_name(feas->backend()) << " diverged at trial " << trial;
      if (truth) {
        std::vector<std::size_t> counts(k, 0);
        ASSERT_EQ(assignment.size(), m);
        for (std::size_t i = 0; i < m; ++i) {
          ASSERT_TRUE(masks[i] >> assignment[i] & 1u);
          ++counts[assignment[i]];
        }
        for (std::size_t q = 0; q < k; ++q) {
          EXPECT_GE(counts[q], box.lo[q]);
          if (box.hi[q] != IntervalBox::kUnbounded) EXPECT_LE(counts[q], box.hi[q]);
        }
      }
    }
  }
  // Every query must have resolved in some stage, and each backend's counts
  // must respect its stage topology: cold-flow answers everything with cold
  // flow builds; greedy never touches the warm network or the SAT core; sat
  // never runs the combinatorial stage or any flow.
  for (const auto& feas : backends) {
    const solve::DecisionCounts& c = feas->counts();
    EXPECT_GT(c.total(), 0u) << solve::backend_name(feas->backend());
    switch (feas->backend()) {
      case solve::Backend::kColdFlow:
        EXPECT_EQ(c.total(), c.flow);
        break;
      case solve::Backend::kGreedy:
        EXPECT_EQ(c.warm + c.sat, 0u);
        break;
      case solve::Backend::kWarmFlow:
        EXPECT_EQ(c.sat, 0u);
        break;
      case solve::Backend::kSat:
        EXPECT_EQ(c.greedy + c.warm + c.flow, 0u);
        break;
    }
  }
}

// Box selection is part of the bit-identity contract: the first box any
// backend accepts must be the first box the pristine scan accepts.
TEST(FeasibilitySolverBackends, BackendFilteredExtractionPicksTheSameBox) {
  Rng rng(77);
  const auto backends = all_backends();
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t k = rng.uniform(1, 4);
    const std::size_t m = rng.uniform(1, 6);
    std::vector<std::uint64_t> masks(m);
    for (auto& mask : masks) mask = rng.uniform(1, (std::uint64_t{1} << k) - 1);
    std::vector<IntervalBox> boxes;
    for (std::size_t b = 0; b < 5; ++b) {
      IntervalBox box(k);
      for (std::size_t q = 0; q < k; ++q) {
        box.lo[q] = rng.uniform(0, 2);
        box.hi[q] = rng.coin(0.4) ? IntervalBox::kUnbounded : rng.uniform(0, 3);
      }
      boxes.push_back(box);
    }
    std::size_t pristine_first = SIZE_MAX;
    std::vector<std::size_t> assignment;
    for (std::size_t b = 0; b < boxes.size(); ++b)
      if (uop_assign_children_masked(masks, boxes[b], k, assignment)) {
        pristine_first = b;
        break;
      }
    for (const auto& feas : backends) {
      feas->begin(masks, k);
      std::size_t backend_first = SIZE_MAX;
      for (std::size_t b = 0; b < boxes.size(); ++b)
        if (feas->decide(boxes[b])) {
          backend_first = b;
          break;
        }
      ASSERT_EQ(backend_first, pristine_first)
          << solve::backend_name(feas->backend()) << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace lcert
