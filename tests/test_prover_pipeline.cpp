// Determinism and correctness of the batch prover pipeline: for every
// registered scheme, prove_assignment must emit certificates bit-identical to
// the serial assign() baseline — at 1, 2 and 8 threads, with the subtree memo
// on and off — and those certificates must verify. Also pins the memo-counter
// plumbing on memo-friendly instances and the arena allocator's
// zero-steady-state-allocation contract.
#include <gtest/gtest.h>

#include <memory>

#include "src/automata/library.hpp"
#include "src/cert/engine.hpp"
#include "src/cert/prove.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/graph/tree_iso.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/schemes/registry.hpp"
#include "src/solve/solver.hpp"
#include "src/util/arena.hpp"
#include "src/util/bitio.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

void expect_bit_identical(const std::vector<Certificate>& a,
                          const std::vector<Certificate>& b, const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a[v].bit_size, b[v].bit_size) << label << " vertex " << v;
    EXPECT_EQ(a[v].bytes, b[v].bytes) << label << " vertex " << v;
  }
}

class ProverPipelineSweep : public ::testing::TestWithParam<std::size_t> {};

// The contract every prove_batch override signs: its output is exactly
// assign()'s output, for every thread count, memo on or off, and under every
// FeasibilitySolver backend (cold-flow reference, greedy, warm-flow, SAT).
TEST_P(ProverPipelineSweep, BatchMatchesAssignAcrossThreadsMemoAndSolvers) {
  const auto entry = scheme_registry().at(GetParam());
  const auto scheme = entry.make();
  Rng rng(8100 + GetParam());
  const Graph g = entry.family.yes_instance(24, rng);

  const auto baseline = scheme->assign(g);
  ASSERT_TRUE(baseline.has_value()) << entry.key;

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const bool memo : {true, false}) {
      for (const auto& info : solve::SolverFactory::registry()) {
        RunOptions options;
        options.num_threads = threads;
        options.memoize = memo;
        options.solver = info.backend;
        const ProveResult result = prove_assignment(*scheme, g, options);
        ASSERT_TRUE(result.certificates.has_value())
            << entry.key << " threads=" << threads << " memo=" << memo
            << " solver=" << info.name;
        expect_bit_identical(*baseline, *result.certificates,
                             entry.key + " threads=" + std::to_string(threads) +
                                 " memo=" + (memo ? std::string("on") : "off") +
                                 " solver=" + info.name);
      }
    }
  }
}

// Solver decision totals, like memo totals, are collected per worker and
// summed serially — the same at every thread count.
TEST(ProverPipeline, SolverDecisionCountersAreThreadCountInvariant) {
  const MsoTreeScheme scheme(standard_tree_automata()[7]);  // leaves>=4
  Rng rng(91);
  Graph g = make_random_tree(256, rng);
  assign_random_ids(g, rng);

  RunOptions one;
  one.num_threads = 1;
  RunOptions eight;
  eight.num_threads = 8;
  const ProveResult a = prove_assignment(scheme, g, one);
  const ProveResult b = prove_assignment(scheme, g, eight);
  ASSERT_TRUE(a.certificates.has_value());
  EXPECT_EQ(a.feas.pruned, b.feas.pruned);
  EXPECT_EQ(a.feas.greedy, b.feas.greedy);
  EXPECT_EQ(a.feas.warm, b.feas.warm);
  EXPECT_EQ(a.feas.flow, b.feas.flow);
  EXPECT_EQ(a.feas.sat, b.feas.sat);
  // The cheap stages must be carrying real load on the cliff shape, and the
  // run must have resolved at least one query somewhere.
  EXPECT_GT(a.feas.total(), 0u);
  EXPECT_GT(a.feas.pruned + a.feas.greedy, 0u);
}

// What the batch prover emits, the radius-1 verifier accepts.
TEST_P(ProverPipelineSweep, BatchOutputVerifies) {
  const auto entry = scheme_registry().at(GetParam());
  const auto scheme = entry.make();
  Rng rng(8200 + GetParam());
  const Graph g = entry.family.yes_instance(20, rng);

  RunOptions options;
  options.num_threads = 2;
  const ProveResult result = prove_assignment(*scheme, g, options);
  ASSERT_TRUE(result.certificates.has_value()) << entry.key;
  const auto outcome = verify_assignment(*scheme, g, *result.certificates, options);
  EXPECT_TRUE(outcome.all_accept) << entry.key;
}

// The prover must still refuse on no-instances through the batch path.
TEST_P(ProverPipelineSweep, BatchRefusesOnNoInstance) {
  const auto entry = scheme_registry().at(GetParam());
  const auto scheme = entry.make();
  Rng rng(8300 + GetParam());
  const Graph g = entry.family.no_instance(20, rng);
  bool truth;
  try {
    truth = scheme->holds(g);
  } catch (const std::exception&) {
    return;  // instance outside the promise: refusal semantics untestable here
  }
  if (truth) return;  // family produced a yes-instance at this size; skip
  const ProveResult result = prove_assignment(*scheme, g, RunOptions{});
  EXPECT_FALSE(result.certificates.has_value()) << entry.key;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ProverPipelineSweep,
                         ::testing::Range<std::size_t>(0, scheme_registry().size()));

// A complete binary tree is maximally memo-friendly: all subtrees at the
// same depth are isomorphic, so the feasibility cache collapses each level
// to one representative and almost every vertex is a hit.
TEST(ProverPipeline, MemoCountersFireOnCompleteBinaryTrees) {
  const MsoTreeScheme scheme(standard_tree_automata()[3]);  // max-degree<=3
  const Graph g = make_complete_binary_tree(8);             // 255 vertices

  RunOptions memo_on;
  const ProveResult with_memo = prove_assignment(scheme, g, memo_on);
  ASSERT_TRUE(with_memo.certificates.has_value());
  EXPECT_GT(with_memo.memo_hits, 0u);
  EXPECT_GT(with_memo.memo_misses, 0u);
  // The cache must be doing real work: far fewer misses than vertices, and
  // the overwhelming majority of lookups landing as hits.
  EXPECT_LT(with_memo.memo_misses, g.vertex_count() / 4);
  EXPECT_GT(with_memo.memo_hits, g.vertex_count());

  RunOptions memo_off;
  memo_off.memoize = false;
  const ProveResult without = prove_assignment(scheme, g, memo_off);
  ASSERT_TRUE(without.certificates.has_value());
  EXPECT_EQ(without.memo_hits, 0u);
  EXPECT_EQ(without.memo_misses, 0u);
  expect_bit_identical(*with_memo.certificates, *without.certificates, "memo on/off");
}

// Memo-hit totals are part of the determinism contract: collected in the
// serial rep-collection pass, so the same at every thread count.
TEST(ProverPipeline, MemoCountersAreThreadCountInvariant) {
  const MsoTreeScheme scheme(standard_tree_automata()[3]);  // max-degree<=3
  const Graph g = make_complete_binary_tree(7);

  RunOptions one;
  one.num_threads = 1;
  RunOptions eight;
  eight.num_threads = 8;
  const ProveResult a = prove_assignment(scheme, g, one);
  const ProveResult b = prove_assignment(scheme, g, eight);
  EXPECT_EQ(a.memo_hits, b.memo_hits);
  EXPECT_EQ(a.memo_misses, b.memo_misses);
}

// Once warm, the per-worker arena must stop allocating: clear() rewinds the
// bit cursor without releasing capacity, so a steady stream of same-sized
// certificates touches no allocator after the first round.
TEST(ProverPipeline, ArenaWriterReachesZeroSteadyStateAllocations) {
  Arena arena;
  BitWriter w(arena);
  for (int round = 0; round < 3; ++round) {
    w.clear();
    for (int i = 0; i < 500; ++i) w.write(0x2Au, 6);
    (void)Certificate::from_writer(std::move(w));
  }
  const std::size_t warm = arena.chunks_allocated();
  for (int round = 0; round < 50; ++round) {
    w.clear();
    for (int i = 0; i < 500; ++i) w.write(0x15u, 6);
    (void)Certificate::from_writer(std::move(w));
  }
  EXPECT_EQ(arena.chunks_allocated(), warm);
}

// Arena reset() retains capacity across generations of writers.
TEST(ProverPipeline, ArenaResetRetainsCapacity) {
  Arena arena;
  (void)arena.allocate_array<std::uint8_t>(10000);
  const std::size_t cap = arena.capacity_bytes();
  const std::size_t chunks = arena.chunks_allocated();
  arena.reset();
  EXPECT_EQ(arena.capacity_bytes(), cap);
  (void)arena.allocate_array<std::uint8_t>(10000);
  EXPECT_EQ(arena.chunks_allocated(), chunks);
}

// The hash-consed code interner assigns equal ids exactly to isomorphic
// rooted subtrees: on a path rooted at an end, every proper subtree is again
// a path, so n vertices collapse to n distinct codes only by height — and on
// a star all leaves share one code.
TEST(ProverPipeline, CanonicalSubtreeCodesHashCons) {
  SubtreeCodeInterner interner;
  Rng rng(3);
  const Graph star = make_star(9);  // center 0, eight leaves
  const RootedTree t = RootedTree::from_graph(star, 0);
  const auto codes = canonical_subtree_codes(t, interner);
  ASSERT_EQ(codes.size(), 9u);
  // All leaves share the leaf code; the root's is distinct.
  for (Vertex v = 1; v < 9; ++v) EXPECT_EQ(codes[v], codes[1]);
  EXPECT_NE(codes[0], codes[1]);
  EXPECT_EQ(interner.size(), 2u);
}

}  // namespace
}  // namespace lcert
