// Determinism and correctness of the zero-copy parallel verification engine:
// serial and parallel verify_assignment must be bit-for-bit identical across
// the whole scheme registry, ViewCache views must agree element-for-element
// with make_view, the audit's trial fan-out must not change its verdicts, and
// the worker pool itself must visit every index exactly once. These tests are
// the ones the ThreadSanitizer preset (-DLCERT_SANITIZE=thread) replays.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "src/cert/audit.hpp"
#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/schemes/registry.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

constexpr std::size_t kForcedThreads = 4;  ///< explicit, so small graphs still fan out

void expect_identical(const VerificationOutcome& a, const VerificationOutcome& b,
                      const std::string& label) {
  EXPECT_EQ(a.all_accept, b.all_accept) << label;
  EXPECT_EQ(a.rejecting, b.rejecting) << label;
  EXPECT_EQ(a.max_certificate_bits, b.max_certificate_bits) << label;
  EXPECT_EQ(a.total_certificate_bits, b.total_certificate_bits) << label;
}

class ParallelEngineSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelEngineSweep, SerialAndParallelAgreeOnYesAndCorrupted) {
  const auto entry = scheme_registry().at(GetParam());
  const auto scheme = entry.make();
  Rng rng(7000 + GetParam());
  const Graph g = entry.family.yes_instance(16, rng);
  const auto certs = scheme->assign(g);
  ASSERT_TRUE(certs.has_value()) << entry.key;

  const RunOptions serial{1, false};
  const RunOptions parallel{kForcedThreads, false};

  // Honest assignment.
  expect_identical(verify_assignment(*scheme, g, *certs, serial),
                   verify_assignment(*scheme, g, *certs, parallel), entry.key + " honest");

  // One flipped bit in the first non-empty certificate.
  auto corrupted = *certs;
  for (auto& c : corrupted) {
    if (c.bit_size == 0) continue;
    c.bytes[0] ^= 0x80u;
    break;
  }
  expect_identical(verify_assignment(*scheme, g, corrupted, serial),
                   verify_assignment(*scheme, g, corrupted, parallel),
                   entry.key + " corrupted");

  // Truncated-to-empty certificates everywhere.
  const std::vector<Certificate> empty(g.vertex_count());
  expect_identical(verify_assignment(*scheme, g, empty, serial),
                   verify_assignment(*scheme, g, empty, parallel), entry.key + " empty");
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ParallelEngineSweep,
                         ::testing::Range<std::size_t>(0, scheme_registry().size()));

TEST(ParallelEngine, StopAtFirstRejectMatchesFullVerdict) {
  const auto entry = find_scheme("vertex-parity");
  const auto scheme = entry.make();
  Rng rng(7100);
  const Graph g = entry.family.yes_instance(32, rng);
  const auto certs = scheme->assign(g);
  ASSERT_TRUE(certs.has_value());

  for (std::size_t threads : {std::size_t{1}, kForcedThreads}) {
    const RunOptions early{threads, true};
    EXPECT_TRUE(verify_assignment(*scheme, g, *certs, early).all_accept);
    const std::vector<Certificate> empty(g.vertex_count());
    const auto outcome = verify_assignment(*scheme, g, empty, early);
    EXPECT_FALSE(outcome.all_accept);
    EXPECT_FALSE(outcome.rejecting.empty());  // at least one witness
  }
}

// ---------------------------------------------------------------------------
// ViewCache vs make_view.
// ---------------------------------------------------------------------------

std::vector<Certificate> random_assignment(std::size_t n, Rng& rng) {
  std::vector<Certificate> certs(n);
  for (auto& c : certs) {
    BitWriter w;
    const std::size_t bits = rng.index(24);
    for (std::size_t i = 0; i < bits; ++i) w.write_bit(rng.coin());
    c = Certificate::from_writer(w);
  }
  return certs;
}

void expect_cache_matches_make_view(const Graph& g, Rng& rng, const std::string& label) {
  const auto certs = random_assignment(g.vertex_count(), rng);
  const ViewCache cache(g);
  ASSERT_EQ(cache.vertex_count(), g.vertex_count()) << label;
  const auto binding = cache.bind(certs);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    const View owned = make_view(g, certs, v);
    const ViewRef ref = binding.view(v);
    ASSERT_EQ(ref.id, owned.id) << label;
    ASSERT_EQ(*ref.certificate, owned.certificate) << label;
    ASSERT_EQ(ref.degree(), owned.degree()) << label;
    for (std::size_t i = 0; i < owned.neighbors.size(); ++i) {
      EXPECT_EQ(ref.neighbors()[i].id, owned.neighbors[i].id) << label << " v=" << v;
      EXPECT_EQ(*ref.neighbors()[i].certificate, owned.neighbors[i].certificate)
          << label << " v=" << v;
    }
    // The accessor helpers agree too.
    for (const auto& nb : owned.neighbors) {
      EXPECT_TRUE(ref.has_neighbor_id(nb.id)) << label;
      ASSERT_NE(ref.neighbor_certificate(nb.id), nullptr) << label;
    }
    EXPECT_FALSE(ref.has_neighbor_id(987654321u)) << label;
    EXPECT_EQ(ref.neighbor_certificate(987654321u), nullptr) << label;
  }
}

Graph cliques_of_paths(std::size_t cliques, std::size_t clique_size, std::size_t path_len) {
  // Cliques strung together by paths: mixes dense and sparse neighborhoods.
  std::vector<std::pair<Vertex, Vertex>> edges;
  Vertex next = 0;
  Vertex prev_exit = 0;
  for (std::size_t c = 0; c < cliques; ++c) {
    const Vertex base = next;
    for (std::size_t i = 0; i < clique_size; ++i)
      for (std::size_t j = i + 1; j < clique_size; ++j)
        edges.emplace_back(base + i, base + j);
    next += clique_size;
    if (c > 0) {
      Vertex hook = prev_exit;
      for (std::size_t p = 0; p < path_len; ++p) {
        edges.emplace_back(hook, next);
        hook = next++;
      }
      edges.emplace_back(hook, base);
    }
    prev_exit = base + clique_size - 1;
  }
  return Graph(next, edges);
}

TEST(ViewCache, MatchesMakeViewOnRandomTrees) {
  Rng rng(7200);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = make_random_tree(2 + rng.index(60), rng);
    assign_random_ids(g, rng);
    expect_cache_matches_make_view(g, rng, "random-tree");
  }
}

TEST(ViewCache, MatchesMakeViewOnCliquesOfPaths) {
  Rng rng(7300);
  Graph g = cliques_of_paths(4, 5, 3);
  assign_random_ids(g, rng);
  expect_cache_matches_make_view(g, rng, "cliques-of-paths");
}

TEST(ViewCache, MatchesMakeViewOnGeneratorZoo) {
  Rng rng(7400);
  std::vector<std::pair<std::string, Graph>> zoo;
  zoo.emplace_back("path", make_path(17));
  zoo.emplace_back("cycle", make_cycle(12));
  zoo.emplace_back("star", make_star(15));
  zoo.emplace_back("complete", make_complete(9));
  zoo.emplace_back("complete-bipartite", make_complete_bipartite(4, 7));
  zoo.emplace_back("caterpillar", make_caterpillar(6, 2));
  zoo.emplace_back("spider", make_spider(4, 3));
  zoo.emplace_back("binary-tree", make_complete_binary_tree(4));
  zoo.emplace_back("random-connected", make_random_connected(25, 0.2, rng));
  for (auto& [name, g] : zoo) {
    assign_random_ids(g, rng);
    expect_cache_matches_make_view(g, rng, name);
  }
}

TEST(ViewCache, RebindSwitchesAssignmentsWithoutRebuilding) {
  Rng rng(7500);
  Graph g = make_random_tree(30, rng);
  assign_random_ids(g, rng);
  const ViewCache cache(g);
  const auto a = random_assignment(30, rng);
  const auto b = random_assignment(30, rng);
  const auto bind_a = cache.bind(a);
  const auto bind_b = cache.bind(b);  // bindings are independent snapshots
  for (Vertex v = 0; v < 30; ++v) {
    EXPECT_EQ(*bind_a.view(v).certificate, a[v]);
    EXPECT_EQ(*bind_b.view(v).certificate, b[v]);
  }
  EXPECT_THROW(cache.bind(std::vector<Certificate>(7)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Audit determinism under trial parallelism.
// ---------------------------------------------------------------------------

TEST(AuditDeterminism, SoundSchemeVerdictIndependentOfThreads) {
  const auto entry = find_scheme("mso-caterpillar");
  const auto scheme = entry.make();
  Rng rng_template(7600);
  const Graph no = entry.family.no_instance(12, rng_template);
  const Graph yes = entry.family.yes_instance(no.vertex_count(), rng_template);
  const auto tmpl = scheme->assign(yes);

  RunOptions serial;
  serial.random_trials = 50;
  serial.mutation_trials = 50;
  serial.num_threads = 1;
  RunOptions parallel = serial;
  parallel.num_threads = kForcedThreads;

  Rng rng_a(42), rng_b(42);
  const auto r_serial =
      attack_soundness(*scheme, no, tmpl.has_value() ? &*tmpl : nullptr, rng_a, serial);
  const auto r_parallel =
      attack_soundness(*scheme, no, tmpl.has_value() ? &*tmpl : nullptr, rng_b, parallel);
  EXPECT_FALSE(r_serial.has_value());
  EXPECT_FALSE(r_parallel.has_value());
}

TEST(AuditDeterminism, ForgeryAgainstUnsoundSchemeIsReproducible) {
  // Accepts iff the local certificate is non-empty: random trials forge this
  // instantly, and the lowest-numbered successful trial must win regardless
  // of the thread count.
  class AcceptNonEmpty final : public Scheme {
   public:
    std::string name() const override { return "accept-nonempty"; }
    bool holds(const Graph&) const override { return false; }
    std::optional<std::vector<Certificate>> assign(const Graph&) const override {
      return std::nullopt;
    }
    bool verify(const ViewRef& view) const override {
      return view.certificate->bit_size > 0;
    }
  };
  AcceptNonEmpty scheme;
  Rng rng_g(7700);
  Graph g = make_path(6);
  assign_random_ids(g, rng_g);

  RunOptions serial;
  serial.num_threads = 1;
  RunOptions parallel;
  parallel.num_threads = kForcedThreads;

  Rng rng_a(99), rng_b(99);
  const auto r_serial = attack_soundness(scheme, g, nullptr, rng_a, serial);
  const auto r_parallel = attack_soundness(scheme, g, nullptr, rng_b, parallel);
  ASSERT_TRUE(r_serial.has_value());
  ASSERT_TRUE(r_parallel.has_value());
  EXPECT_EQ(r_serial->attack, r_parallel->attack);
  EXPECT_EQ(r_serial->certificates, r_parallel->certificates);
}

// ---------------------------------------------------------------------------
// The worker pool itself.
// ---------------------------------------------------------------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    const std::size_t n = 10007;
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, threads, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(parallel_for(5000, 4,
                            [](std::size_t i) {
                              if (i == 1234) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ResolveThreadCountHonorsExplicitRequests) {
  EXPECT_EQ(resolve_thread_count(4, 10), 4u);   // explicit wins below the cutoff
  EXPECT_EQ(resolve_thread_count(4, 2), 2u);    // but never more workers than items
  EXPECT_EQ(resolve_thread_count(0, 10), 1u);   // auto stays serial on tiny inputs
  EXPECT_EQ(resolve_thread_count(0, 1), 1u);
}

TEST(BitIo, TruncationErrorTypeIsDedicated) {
  BitWriter w;
  w.write(5, 3);
  BitReader r(w);
  r.read(3);
  EXPECT_THROW(r.read(1), CertificateTruncated);
  // Back-compat: it still is-a std::out_of_range for older catch sites.
  BitReader r2(w);
  r2.read(3);
  EXPECT_THROW(r2.read(1), std::out_of_range);
}

}  // namespace
}  // namespace lcert
