// lcert::obs — counters, gauges, log2 histograms, span nesting, exporters,
// and the instrumentation contract the engine and provers rely on:
//  - totals are bit-identical across worker-pool thread counts (shard cells
//    merge by addition, so determinism survives parallelism);
//  - every registry scheme's prover populates prover/<name>/cert_bits with
//    exactly the sizes the engine later accounts for;
//  - the JSON artifact is well-formed and carries records + metrics + trace.
// The ThreadSanitizer preset replays the *Parallel* tests here.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <string>

#include <chrono>
#include <thread>

#include "src/cert/engine.hpp"
#include "src/cert/prove.hpp"
#include "src/graph/generators.hpp"
#include "src/obs/instrumented_scheme.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"
#include "src/obs/span.hpp"
#include "src/obs/trace.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/schemes/registry.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

using obs::registry;

/// Enables the process registry for the test body and leaves it disabled and
/// zeroed (trace drained) for whoever runs next in this binary.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry().reset();
    obs::take_trace();
    registry().set_enabled(true);
  }
  void TearDown() override {
    registry().set_enabled(false);
    registry().reset();
    obs::take_trace();
  }
};

TEST_F(ObsTest, CounterAccumulatesAndSnapshotReads) {
  const obs::Counter c = registry().counter("test/counter");
  c.add();
  c.add(41);
  EXPECT_EQ(registry().counter_value("test/counter"), 42u);
  EXPECT_EQ(registry().snapshot().counter("test/counter"), 42u);
  EXPECT_EQ(registry().counter_value("test/unregistered"), 0u);
}

TEST_F(ObsTest, GaugeIsLastWriteWins) {
  const obs::Gauge g = registry().gauge("test/gauge");
  g.set(7);
  g.set(-3);
  EXPECT_EQ(registry().snapshot().gauges.at("test/gauge"), -3);
}

TEST_F(ObsTest, DisabledRegistryIsInert) {
  const obs::Counter c = registry().counter("test/disabled");
  const obs::Histogram h = registry().histogram("test/disabled_hist");
  registry().set_enabled(false);
  c.add(5);
  h.record(5);
  registry().set_enabled(true);
  EXPECT_EQ(registry().counter_value("test/disabled"), 0u);
  EXPECT_EQ(registry().histogram_snapshot("test/disabled_hist").count, 0u);

  const obs::Counter inert;  // default-constructed handle: no registry at all
  inert.add();               // must not crash
}

TEST_F(ObsTest, HistogramBucketIsBitWidth) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(1023), 10u);
  EXPECT_EQ(obs::histogram_bucket(1024), 11u);
  EXPECT_EQ(obs::histogram_bucket(~std::uint64_t{0}), 64u);
}

TEST_F(ObsTest, HistogramStats) {
  const obs::Histogram h = registry().histogram("test/hist");
  for (std::uint64_t v : {0u, 3u, 3u, 8u, 100u}) h.record(v);
  const obs::HistogramSnapshot snap = registry().histogram_snapshot("test/hist");
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 114u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_DOUBLE_EQ(snap.mean(), 114.0 / 5.0);
  EXPECT_EQ(snap.buckets[0], 1u);  // the zero
  EXPECT_EQ(snap.buckets[2], 2u);  // 3, 3
  EXPECT_EQ(snap.buckets[4], 1u);  // 8
  EXPECT_EQ(snap.buckets[7], 1u);  // 100
}

TEST_F(ObsTest, HandleLookupIsIdempotent) {
  const obs::Counter a = registry().counter("test/same");
  const obs::Counter b = registry().counter("test/same");
  a.add(1);
  b.add(2);
  EXPECT_EQ(registry().counter_value("test/same"), 3u);
}

// The determinism contract: shard cells merge by addition, so the totals of
// a parallel_for are the same for every thread count — including histogram
// buckets and extrema.
TEST_F(ObsTest, ParallelTotalsAreThreadCountInvariant) {
  const obs::Counter c = registry().counter("test/par_counter");
  const obs::Histogram h = registry().histogram("test/par_hist");
  constexpr std::size_t kItems = 1000;

  std::uint64_t counts[2], sums[2];
  obs::HistogramSnapshot hists[2];
  const std::size_t thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    registry().reset();
    parallel_for(kItems, thread_counts[run], [&](std::size_t i) {
      c.add(i);
      h.record(i % 37);
    });
    counts[run] = registry().counter_value("test/par_counter");
    sums[run] = registry().histogram_snapshot("test/par_hist").sum;
    hists[run] = registry().histogram_snapshot("test/par_hist");
  }
  EXPECT_EQ(counts[0], kItems * (kItems - 1) / 2);
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(hists[0].count, hists[1].count);
  EXPECT_EQ(hists[0].min, hists[1].min);
  EXPECT_EQ(hists[0].max, hists[1].max);
  EXPECT_EQ(hists[0].buckets, hists[1].buckets);
}

// Same invariance for the real pipeline: a full verify_assignment round must
// leave identical engine counters behind at num_threads 1 and 4 (only the
// wall-clock counter engine/worker_busy_ns may differ).
TEST_F(ObsTest, EngineCountersAreThreadCountInvariant) {
  MsoTreeScheme scheme(standard_tree_automata()[0]);  // "path"
  Rng rng(11);
  Graph g = make_path(600);
  assign_random_ids(g, rng);
  const auto certs = scheme.assign(g);
  ASSERT_TRUE(certs.has_value());
  const ViewCache cache(g);

  std::map<std::string, std::uint64_t> totals[2];
  const std::size_t thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    registry().reset();
    const auto outcome =
        verify_assignment(scheme, cache, *certs, RunOptions{thread_counts[run], false});
    ASSERT_TRUE(outcome.all_accept);
    totals[run] = registry().counters_snapshot();
    totals[run].erase("engine/worker_busy_ns");
  }
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[0].at("engine/vertices_verified"), 600u);
  EXPECT_EQ(totals[0].at("engine/views_bound"), 600u);
  EXPECT_EQ(totals[0].at("engine/batches"), (600 + 127) / 128);
  EXPECT_EQ(totals[0].at("engine/rejections"), 0u);
}

TEST_F(ObsTest, RejectionsAndTruncationsAreCounted) {
  MsoTreeScheme scheme(standard_tree_automata()[0]);
  Rng rng(12);
  Graph g = make_path(32);
  assign_random_ids(g, rng);
  const auto certs = scheme.assign(g);
  ASSERT_TRUE(certs.has_value());
  std::vector<Certificate> empty(g.vertex_count());  // all-empty: every vertex rejects
  const auto outcome = verify_assignment(scheme, g, empty);
  EXPECT_FALSE(outcome.all_accept);
  EXPECT_EQ(registry().counter_value("engine/rejections"), 32u);
}

TEST_F(ObsTest, SpansNestAndCaptureCounterDeltas) {
  const obs::Counter c = registry().counter("test/span_counter");
  {
    LCERT_SPAN("outer");
    c.add(5);
    {
      LCERT_SPAN("inner");
      c.add(2);
    }
  }
  const auto trace = obs::take_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].name, "outer");
  ASSERT_EQ(trace[0].children.size(), 1u);
  EXPECT_EQ(trace[0].children[0].name, "inner");
  EXPECT_TRUE(trace[0].children[0].children.empty());
  EXPECT_GE(trace[0].wall_ms, trace[0].children[0].wall_ms);

  const auto find_delta = [](const obs::SpanNode& node, const char* name) -> std::uint64_t {
    for (const auto& [key, delta] : node.counter_deltas)
      if (key == name) return delta;
    return 0;
  };
  EXPECT_EQ(find_delta(trace[0], "test/span_counter"), 7u);  // outer sees both adds
  EXPECT_EQ(find_delta(trace[0].children[0], "test/span_counter"), 2u);

  EXPECT_TRUE(obs::take_trace().empty());  // drained
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  registry().set_enabled(false);
  {
    LCERT_SPAN("invisible");
  }
  registry().set_enabled(true);
  EXPECT_TRUE(obs::take_trace().empty());
}

// --- minimal JSON validity checker (objects/arrays/strings/numbers/
// true/false/null), enough to prove the exporter emits well-formed JSON ----

bool skip_json_value(const std::string& s, std::size_t& i);

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

bool skip_string(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  for (++i; i < s.size(); ++i) {
    if (s[i] == '\\') {
      ++i;
      continue;
    }
    if (s[i] == '"') {
      ++i;
      return true;
    }
  }
  return false;
}

bool skip_json_value(const std::string& s, std::size_t& i) {
  skip_ws(s, i);
  if (i >= s.size()) return false;
  const char c = s[i];
  if (c == '"') return skip_string(s, i);
  if (c == '{' || c == '[') {
    const char close = c == '{' ? '}' : ']';
    ++i;
    skip_ws(s, i);
    if (i < s.size() && s[i] == close) {
      ++i;
      return true;
    }
    while (true) {
      if (c == '{') {
        skip_ws(s, i);
        if (!skip_string(s, i)) return false;
        skip_ws(s, i);
        if (i >= s.size() || s[i] != ':') return false;
        ++i;
      }
      if (!skip_json_value(s, i)) return false;
      skip_ws(s, i);
      if (i >= s.size()) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == close) {
        ++i;
        return true;
      }
      return false;
    }
  }
  if (std::strchr("-0123456789", c) != nullptr) {
    ++i;
    while (i < s.size() && std::strchr("0123456789.eE+-", s[i]) != nullptr) ++i;
    return true;
  }
  for (const char* lit : {"true", "false", "null"})
    if (s.compare(i, std::strlen(lit), lit) == 0) {
      i += std::strlen(lit);
      return true;
    }
  return false;
}

bool is_valid_json(const std::string& s) {
  std::size_t i = 0;
  if (!skip_json_value(s, i)) return false;
  skip_ws(s, i);
  return i == s.size();
}

TEST_F(ObsTest, JsonValidatorSelfTest) {
  EXPECT_TRUE(is_valid_json(R"({"a":[1,2.5,"x\"y"],"b":{},"c":null})"));
  EXPECT_FALSE(is_valid_json(R"({"a":1,})"));
  EXPECT_FALSE(is_valid_json(R"({"a")"));
  EXPECT_FALSE(is_valid_json("{}{}"));
}

TEST_F(ObsTest, ReportJsonRoundTrip) {
  registry().counter("test/json_counter").add(3);
  registry().histogram("test/json_hist").record(9);
  {
    LCERT_SPAN("test/json_span");
  }
  obs::Report report("unit-test");
  report.meta("seed", 1);
  report.add().set("scheme", "s\"1").set("n", 16).set("max_bits", 3).set("wall_ms", 0.5);
  report.add().set("scheme", "s2").set("n", 32).set("extra", "yes");
  report.note("a note");

  const std::string json = report.json();
  ASSERT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"experiment\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"scheme\":\"s\\\"1\""), std::string::npos);
  EXPECT_NE(json.find("\"max_bits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test/json_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test/json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"test/json_span\""), std::string::npos);
  // json() drains the trace: a second export is still valid, now trace-free.
  const std::string second = report.json();
  ASSERT_TRUE(is_valid_json(second));
  EXPECT_EQ(second.find("\"test/json_span\""), std::string::npos);
}

TEST_F(ObsTest, ReportCsvHasUnionHeaderAndEscaping) {
  obs::Report report("unit-test");
  report.add().set("scheme", "a,b").set("n", 1);
  report.add().set("scheme", "c").set("n", 2).set("wall_ms", 1.25);
  const std::string csv = report.csv();
  EXPECT_EQ(csv, "scheme,n,wall_ms\n\"a,b\",1,\nc,2,1.25\n");
}

TEST_F(ObsTest, FromCliStripsMetricsFlagAndEnables) {
  registry().set_enabled(false);
  char prog[] = "prog", flag[] = "--metrics-out", path[] = "/tmp/x.json", keep[] = "other";
  char* argv[] = {prog, flag, path, keep, nullptr};
  int argc = 4;
  const obs::Report report = obs::Report::from_cli("cli-test", argc, argv);
  EXPECT_EQ(report.output_path(), "/tmp/x.json");
  EXPECT_TRUE(registry().enabled());
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "other");
  EXPECT_EQ(argv[2], nullptr);
}

// Every scheme the registry hands out is InstrumentedScheme-wrapped: after an
// honest prover run, prover/<name>/cert_bits holds exactly one sample per
// vertex and its sum matches the engine's certificate-bit accounting.
TEST_F(ObsTest, RegistrySweepProverHistogramMatchesEngineAccounting) {
  for (const auto& entry : scheme_registry()) {
    registry().reset();
    const auto scheme = entry.make();
    Rng rng(9000);
    const Graph g = entry.family.yes_instance(16, rng);
    const std::string hist_name = obs::InstrumentedScheme::size_histogram_name(*scheme);

    const auto outcome = run_scheme(*scheme, g);
    ASSERT_TRUE(outcome.prover_succeeded) << entry.key;
    ASSERT_TRUE(outcome.verification.all_accept) << entry.key;

    const obs::HistogramSnapshot h = registry().histogram_snapshot(hist_name);
    EXPECT_EQ(h.count, g.vertex_count()) << entry.key << " " << hist_name;
    EXPECT_EQ(h.sum, outcome.verification.total_certificate_bits) << entry.key;
    EXPECT_EQ(h.max, outcome.verification.max_certificate_bits) << entry.key;
    EXPECT_GE(registry().counter_value("prover/assign_calls"), 1u) << entry.key;
  }
}

// --- timeline tracing, quantiles, outlier attribution (DESIGN.md §14) ------

/// Like ObsTest, plus the trace sink and outlier sampler: enabled for the
/// body, drained + disabled + restored to default capacities afterwards so
/// tracing never leaks into unrelated tests in this binary.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry().reset();
    obs::take_trace();
    obs::trace_sink().reset();
    obs::outliers().reset();
    registry().set_enabled(true);
    obs::trace_sink().set_enabled(true);
  }
  void TearDown() override {
    obs::trace_sink().set_enabled(false);
    obs::trace_sink().set_capacity(std::size_t{1} << 16);
    obs::trace_sink().reset();
    obs::outliers().set_capacity(16);
    obs::outliers().reset();
    registry().set_enabled(false);
    registry().reset();
    obs::take_trace();
  }
};

TEST_F(TraceTest, EmitAndTakeRoundTrip) {
  const std::uint32_t id = obs::trace_sink().name_id("test/instant");
  obs::trace_sink().emit(id, obs::TraceEventKind::kInstant, 7, 42);
  const obs::TraceSnapshot snap = obs::trace_sink().take();
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_EQ(snap.name(snap.events[0]), "test/instant");
  EXPECT_EQ(snap.events[0].logical, 7u);
  EXPECT_EQ(snap.events[0].arg, 42);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_TRUE(obs::trace_sink().take().events.empty());  // drained
}

TEST_F(TraceTest, DisabledSinkIsInert) {
  obs::trace_sink().set_enabled(false);
  const std::uint32_t id = obs::trace_sink().name_id("test/invisible");
  obs::trace_sink().emit(id, obs::TraceEventKind::kInstant, 0, 0);
  {
    obs::TraceSpan span(id);
  }
  const obs::TraceSnapshot snap = obs::trace_sink().take();
  EXPECT_TRUE(snap.events.empty());
  EXPECT_EQ(snap.dropped, 0u);
}

// Ring-buffer contract: a full buffer stops recording and counts drops —
// events are never overwritten and never silently lost.
TEST_F(TraceTest, OverflowStopsRecordingAndCountsDrops) {
  obs::trace_sink().reset();
  obs::trace_sink().set_capacity(8);
  // A fresh thread gets a buffer at the new capacity (set_capacity applies
  // to buffers created after the call; the main thread may hold an old one).
  std::thread writer([&] {
    const std::uint32_t id = obs::trace_sink().name_id("test/overflow");
    for (std::uint64_t i = 0; i < 20; ++i)
      obs::trace_sink().emit(id, obs::TraceEventKind::kInstant, i, 0);
  });
  writer.join();
  const obs::TraceSnapshot snap = obs::trace_sink().take();
  EXPECT_EQ(snap.events.size(), 8u);
  EXPECT_EQ(snap.dropped, 12u);
  // The retained prefix is the *first* 8 events, in emission order.
  for (std::size_t i = 0; i < snap.events.size(); ++i)
    EXPECT_EQ(snap.events[i].logical, i);
}

// The determinism contract: logical sequence numbers come from work identity
// (batch block, level index), never arrival order, so the sorted
// (name, kind, logical, arg) stream is bit-identical across thread counts.
TEST_F(TraceTest, LogicalStreamIsThreadCountInvariant) {
  MsoTreeScheme scheme(standard_tree_automata()[0]);  // "path"
  Rng rng(21);
  Graph g = make_path(700);
  assign_random_ids(g, rng);

  std::string streams[3];
  const std::size_t thread_counts[3] = {1, 4, 8};
  for (int run = 0; run < 3; ++run) {
    registry().reset();
    obs::trace_sink().reset();
    const RunOptions options{thread_counts[run], true};
    const ProveResult proved = prove_assignment(scheme, g, options);
    ASSERT_TRUE(proved.certificates.has_value());
    const auto outcome = verify_assignment(scheme, g, *proved.certificates, options);
    ASSERT_TRUE(outcome.all_accept);
    streams[run] = obs::logical_stream(obs::trace_sink().take());
  }
  EXPECT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);
  // The run actually traced the pipeline: spans and per-batch instants.
  EXPECT_NE(streams[0].find("prover/prove_assignment"), std::string::npos);
  EXPECT_NE(streams[0].find("engine/verify_batch"), std::string::npos);
}

// Acceptance: the exported Chrome trace is valid JSON and its span events
// reconcile with the metrics counters (one prover/prove_assignment begin per
// prover/prove_calls increment).
TEST_F(TraceTest, ChromeTraceJsonIsValidAndReconcilesWithCounters) {
  MsoTreeScheme scheme(standard_tree_automata()[0]);
  Rng rng(22);
  Graph g = make_path(300);
  assign_random_ids(g, rng);
  for (int i = 0; i < 3; ++i) {
    const ProveResult proved = prove_assignment(scheme, g, RunOptions{1, true});
    ASSERT_TRUE(proved.certificates.has_value());
  }
  const std::uint64_t prove_calls = registry().counter_value("prover/prove_calls");
  ASSERT_EQ(prove_calls, 3u);

  const obs::TraceSnapshot snap = obs::trace_sink().take();
  std::uint64_t begins = 0;
  for (const obs::TraceEvent& e : snap.events)
    if (e.kind == obs::TraceEventKind::kSpanBegin &&
        snap.name(e) == "prover/prove_assignment")
      ++begins;
  EXPECT_EQ(begins, prove_calls);

  const std::string json = obs::chrome_trace_json(snap);
  ASSERT_TRUE(is_valid_json(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"rollup\""), std::string::npos);
  EXPECT_NE(json.find("prover/prove_assignment"), std::string::npos);
}

TEST_F(TraceTest, RollupPairsSpansAndComputesSelfTime) {
  const std::uint32_t outer = obs::trace_sink().name_id("test/outer");
  const std::uint32_t inner = obs::trace_sink().name_id("test/inner");
  {
    obs::TraceSpan a(outer);
    obs::TraceSpan b(inner);
  }
  const auto rows = obs::trace_rollup(obs::trace_sink().take());
  ASSERT_EQ(rows.size(), 2u);
  const auto find = [&](const std::string& name) -> const obs::TraceRollupRow* {
    for (const auto& r : rows)
      if (r.name == name) return &r;
    return nullptr;
  };
  const obs::TraceRollupRow* o = find("test/outer");
  const obs::TraceRollupRow* i = find("test/inner");
  ASSERT_NE(o, nullptr);
  ASSERT_NE(i, nullptr);
  EXPECT_EQ(o->count, 1u);
  EXPECT_EQ(i->count, 1u);
  EXPECT_GE(o->total_ms, i->total_ms);  // inner nests inside outer
  EXPECT_GE(o->total_ms, o->self_ms);   // self excludes the inner span
  EXPECT_LE(o->max_ms, o->total_ms + 1e-9);
}

// Acceptance: with tracing off, the per-batch instrumentation must be a
// structural no-op (no events, no quantile samples) and an emit attempt must
// be cheap. The time bound is deliberately generous (sanitizer builds): the
// real <1% budget is asserted on the n=4096 prove bench, this test only pins
// that the disabled path never grows a lock or an allocation.
TEST_F(TraceTest, DisabledTracingIsStructurallyFree) {
  obs::trace_sink().set_enabled(false);
  MsoTreeScheme scheme(standard_tree_automata()[0]);
  Rng rng(23);
  Graph g = make_path(256);
  assign_random_ids(g, rng);
  const ProveResult proved = prove_assignment(scheme, g, RunOptions{2, true});
  ASSERT_TRUE(proved.certificates.has_value());
  verify_assignment(scheme, g, *proved.certificates, RunOptions{2, false});
  EXPECT_TRUE(obs::trace_sink().take().events.empty());
  EXPECT_EQ(registry().quantile_snapshot("engine/verify_batch_ns").count, 0u);
  EXPECT_EQ(registry().quantile_snapshot("prover/prove_ns").count, 0u);

  constexpr int kCalls = 100000;
  const std::uint32_t id = obs::trace_sink().name_id("test/disabled");
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kCalls; ++i)
    obs::trace_sink().emit(id, obs::TraceEventKind::kInstant, 0, 0);
  const double ns_per_call =
      std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0)
          .count() /
      kCalls;
  EXPECT_LT(ns_per_call, 1000.0);  // one relaxed load + branch, with huge margin
}

TEST_F(TraceTest, QuantilesAreExactOnSmallStreams) {
  const obs::Quantile q = registry().quantile("test/q");
  for (std::uint64_t v = 1; v <= 100; ++v) q.record(v);
  const obs::QuantileSnapshot snap = registry().quantile_snapshot("test/q");
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_EQ(snap.sum, 5050u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_EQ(snap.p50, 50u);  // nearest-rank on the full stream: exact
  EXPECT_EQ(snap.p90, 90u);
  EXPECT_EQ(snap.p99, 99u);
  EXPECT_DOUBLE_EQ(snap.mean(), 50.5);
}

TEST_F(TraceTest, QuantileAggregatesStayExactPastSampleCap) {
  const obs::Quantile q = registry().quantile("test/q_overflow");
  constexpr std::uint64_t kN = 10000;  // > the 8192 per-thread sample cap
  std::uint64_t sum = 0;
  for (std::uint64_t v = 1; v <= kN; ++v) {
    q.record(v);
    sum += v;
  }
  const obs::QuantileSnapshot snap = registry().quantile_snapshot("test/q_overflow");
  EXPECT_EQ(snap.count, kN);       // count/sum/min/max never sampled
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, kN);
  EXPECT_EQ(snap.dropped, kN - 8192);  // percentile samples beyond the cap
  EXPECT_GT(snap.p50, 0u);             // percentiles still computed on retained
}

TEST_F(TraceTest, QuantileTotalsAreThreadCountInvariant) {
  const obs::Quantile q = registry().quantile("test/q_par");
  obs::QuantileSnapshot snaps[2];
  const std::size_t thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    registry().reset();
    parallel_for(2000, thread_counts[run], [&](std::size_t i) { q.record(i % 97 + 1); });
    snaps[run] = registry().quantile_snapshot("test/q_par");
  }
  EXPECT_EQ(snaps[0].count, 2000u);
  EXPECT_EQ(snaps[0].count, snaps[1].count);
  EXPECT_EQ(snaps[0].sum, snaps[1].sum);
  EXPECT_EQ(snaps[0].min, snaps[1].min);
  EXPECT_EQ(snaps[0].max, snaps[1].max);
  EXPECT_EQ(snaps[0].p50, snaps[1].p50);  // full retention: exact either way
}

TEST_F(TraceTest, OutlierSamplerKeepsSlowestK) {
  obs::outliers().set_capacity(3);
  for (std::uint64_t ns : {10u, 50u, 20u, 90u, 30u, 70u}) {
    if (!obs::outliers().would_admit(ns)) continue;
    obs::OutlierRecord rec;
    rec.ns = ns;
    rec.site = "test";
    obs::outliers().record(std::move(rec));
  }
  const auto top = obs::outliers().top();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].ns, 90u);  // slowest first
  EXPECT_EQ(top[1].ns, 70u);
  EXPECT_EQ(top[2].ns, 50u);
  // Once full, the floor rejects anything at or below the current K-th.
  EXPECT_FALSE(obs::outliers().would_admit(50));
  EXPECT_TRUE(obs::outliers().would_admit(60));
}

// Acceptance: the slowest verify batches of the leaves>=4 scheme are
// attributed to the automaton state whose transition DNF carries the box
// blow-up — the ~29k-box cliff gets a name instead of staying folklore.
TEST_F(TraceTest, OutlierAttributionNamesTheLeavesDnfState) {
  MsoTreeScheme scheme(standard_tree_automata()[7]);  // leaves >= 4
  // boxes_per_state gauges: registered at construction, visible even though
  // the batch instrumentation has not run yet. The raw DNF carries the
  // cliff; the canonical form the verifier actually probes is tiny.
  const std::string raw_name = "verify/" + scheme.name() + "/boxes_per_state_raw";
  const std::string canon_name =
      "verify/" + scheme.name() + "/boxes_per_state_canonical";
  const auto gauges = registry().snapshot().gauges;
  ASSERT_TRUE(gauges.count(raw_name)) << raw_name;
  EXPECT_GE(gauges.at(raw_name), 1000) << "leaves>=4 raw DNF should be box-heavy";
  ASSERT_TRUE(gauges.count(canon_name)) << canon_name;
  EXPECT_LE(gauges.at(canon_name), 64)
      << "canonicalization should collapse the leaves>=4 DNF";

  Rng rng(24);
  Graph g = make_random_tree(512, rng);
  assign_random_ids(g, rng);
  const auto certs = scheme.assign(g);
  ASSERT_TRUE(certs.has_value());
  const auto outcome = verify_assignment(scheme, g, *certs, RunOptions{2, false});
  ASSERT_TRUE(outcome.all_accept);

  const auto top = obs::outliers().top();
  ASSERT_FALSE(top.empty());
  bool found = false;
  for (const obs::OutlierRecord& rec : top) {
    if (rec.site != "verify-batch") continue;
    EXPECT_EQ(rec.scheme, scheme.name());
    EXPECT_NE(rec.detail.find("state="), std::string::npos) << rec.detail;
    EXPECT_NE(rec.detail.find("boxes="), std::string::npos) << rec.detail;
    found = true;
  }
  EXPECT_TRUE(found) << "no verify-batch outlier recorded";
}

TEST_F(TraceTest, FromCliStripsTraceFlagAndEnablesSink) {
  obs::trace_sink().set_enabled(false);
  char prog[] = "prog", flag[] = "--trace-out", path[] = "/tmp/t.json", keep[] = "other";
  char* argv[] = {prog, flag, path, keep, nullptr};
  int argc = 4;
  const obs::Report report = obs::Report::from_cli("cli-test", argc, argv);
  EXPECT_EQ(report.trace_output_path(), "/tmp/t.json");
  EXPECT_TRUE(obs::trace_enabled());
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "other");
}

TEST_F(TraceTest, ReportJsonCarriesQuantilesAndOutliers) {
  registry().quantile("test/report_q").record(5);
  obs::OutlierRecord rec;
  rec.ns = 123;
  rec.site = "test";
  rec.detail = "state=\"K_4\"";  // quotes must be escaped in the export
  obs::outliers().record(std::move(rec));

  obs::Report report("unit-test");
  const std::string json = report.json();
  ASSERT_TRUE(is_valid_json(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"quantiles\""), std::string::npos);
  EXPECT_NE(json.find("\"test/report_q\""), std::string::npos);
  EXPECT_NE(json.find("\"outliers\""), std::string::npos);
  EXPECT_NE(json.find("state="), std::string::npos);
}

TEST_F(TraceTest, UnwritableArtifactPathsAreRejectedUpFront) {
  obs::Report report("unit-test");
  report.set_output("/nonexistent-dir/metrics.json");
  std::string error;
  EXPECT_FALSE(report.outputs_writable(&error));
  EXPECT_NE(error.find("/nonexistent-dir/metrics.json"), std::string::npos);
  EXPECT_EQ(report.write_artifacts(), 2);

  obs::Report ok("unit-test");  // no outputs configured: nothing to fail
  EXPECT_TRUE(ok.outputs_writable());
  EXPECT_EQ(ok.write_artifacts(), 0);
}

}  // namespace
}  // namespace lcert
