#include "src/util/bitio.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/cert/scheme.hpp"
#include "src/util/arena.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

TEST(BitIo, RoundTripFixedWidth) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0xFFFF, 16);
  w.write(0, 1);
  w.write(42, 7);
  EXPECT_EQ(w.bit_size(), 27u);

  BitReader r(w);
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(16), 0xFFFFu);
  EXPECT_EQ(r.read(1), 0u);
  EXPECT_EQ(r.read(7), 42u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitIo, RejectsOverwideValue) {
  BitWriter w;
  EXPECT_THROW(w.write(4, 2), std::invalid_argument);
  EXPECT_THROW(w.write(1, 65), std::invalid_argument);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.write(3, 2);
  BitReader r(w);
  EXPECT_EQ(r.read(2), 3u);
  EXPECT_THROW(r.read(1), std::out_of_range);
}

TEST(BitIo, VarnatSmallValuesAreFiveBits) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    BitWriter w;
    w.write_varnat(v);
    EXPECT_EQ(w.bit_size(), 5u) << v;
    BitReader r(w);
    EXPECT_EQ(r.read_varnat(), v);
  }
}

TEST(BitIo, VarnatRoundTripRandom) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform(0, std::uint64_t{1} << rng.index(64));
    BitWriter w;
    w.write_varnat(v);
    BitReader r(w);
    EXPECT_EQ(r.read_varnat(), v);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(BitIo, SixtyFourBitBoundary) {
  BitWriter w;
  w.write(~std::uint64_t{0}, 64);
  w.write_varnat(~std::uint64_t{0});
  BitReader r(w);
  EXPECT_EQ(r.read(64), ~std::uint64_t{0});
  EXPECT_EQ(r.read_varnat(), ~std::uint64_t{0});
}

TEST(BitIo, AppendConcatenatesStreams) {
  BitWriter a;
  a.write(0b1011, 4);
  BitWriter b;
  b.write_varnat(123456);
  a.append(b);
  BitReader r(a);
  EXPECT_EQ(r.read(4), 0b1011u);
  EXPECT_EQ(r.read_varnat(), 123456u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitIo, MixedInterleavedRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    BitWriter w;
    for (int i = 0; i < 40; ++i) {
      const unsigned width = 1 + static_cast<unsigned>(rng.index(64));
      const std::uint64_t value =
          width == 64 ? rng.uniform(0, ~std::uint64_t{0})
                      : rng.uniform(0, (std::uint64_t{1} << width) - 1);
      w.write(value, width);
      fields.emplace_back(value, width);
    }
    BitReader r(w);
    for (auto [value, width] : fields) EXPECT_EQ(r.read(width), value);
  }
}

// The arena-backed writer is a drop-in for the heap writer: same bytes, same
// bit_size, for arbitrary interleaved field sequences.
TEST(BitIo, ArenaWriterMatchesHeapWriter) {
  Rng rng(13);
  Arena arena;
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter heap;
    BitWriter in_arena(arena);
    for (int i = 0; i < 60; ++i) {
      const unsigned width = 1 + static_cast<unsigned>(rng.index(64));
      const std::uint64_t value =
          width == 64 ? rng.uniform(0, ~std::uint64_t{0})
                      : rng.uniform(0, (std::uint64_t{1} << width) - 1);
      heap.write(value, width);
      in_arena.write(value, width);
    }
    heap.write_varnat(trial);
    in_arena.write_varnat(trial);
    ASSERT_EQ(heap.bit_size(), in_arena.bit_size());
    const auto a = heap.bytes();
    const auto b = in_arena.bytes();
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << trial;
  }
}

// clear() rewinds without releasing the buffer — and crucially must not leak
// stale bits from the previous stream into the next one.
TEST(BitIo, ArenaWriterClearLeavesNoStaleBits) {
  Arena arena;
  BitWriter w(arena);
  w.write(~std::uint64_t{0}, 64);  // all-ones fill
  w.write(~std::uint64_t{0}, 64);
  w.clear();
  w.write(0, 3);  // shorter stream of zeros over the old ones
  w.write(0, 64);
  BitReader r(w);
  EXPECT_EQ(r.read(3), 0u);
  EXPECT_EQ(r.read(64), 0u);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(w.bytes().size(), (3u + 64u + 7u) / 8u);
  for (const std::uint8_t byte : w.bytes()) EXPECT_EQ(byte, 0u);
}

// The move overload steals the heap buffer; on an arena writer it copies out
// (arena memory cannot change owners) but leaves the writer reusable.
TEST(BitIo, FromWriterMoveMatchesCopy) {
  Arena arena;
  for (const bool use_arena : {false, true}) {
    BitWriter w = use_arena ? BitWriter(arena) : BitWriter();
    w.write(0b1101, 4);
    w.write_varnat(987654321);
    const Certificate copied = Certificate::from_writer(w);
    const Certificate moved = Certificate::from_writer(std::move(w));
    EXPECT_EQ(copied.bit_size, moved.bit_size);
    EXPECT_EQ(copied.bytes, moved.bytes);
    // The writer is reusable after the move: cursor rewound, writes land.
    w.write(0b11, 2);
    EXPECT_EQ(w.bit_size(), 2u);
    BitReader r(w);
    EXPECT_EQ(r.read(2), 0b11u);
  }
}

TEST(BitsFor, Values) {
  EXPECT_EQ(bits_for(0), 0u);
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 2u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 3u);
  EXPECT_EQ(bits_for(255), 8u);
  EXPECT_EQ(bits_for(256), 9u);
}

}  // namespace
}  // namespace lcert
