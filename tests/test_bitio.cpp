#include "src/util/bitio.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace lcert {
namespace {

TEST(BitIo, RoundTripFixedWidth) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0xFFFF, 16);
  w.write(0, 1);
  w.write(42, 7);
  EXPECT_EQ(w.bit_size(), 27u);

  BitReader r(w);
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(16), 0xFFFFu);
  EXPECT_EQ(r.read(1), 0u);
  EXPECT_EQ(r.read(7), 42u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitIo, RejectsOverwideValue) {
  BitWriter w;
  EXPECT_THROW(w.write(4, 2), std::invalid_argument);
  EXPECT_THROW(w.write(1, 65), std::invalid_argument);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.write(3, 2);
  BitReader r(w);
  EXPECT_EQ(r.read(2), 3u);
  EXPECT_THROW(r.read(1), std::out_of_range);
}

TEST(BitIo, VarnatSmallValuesAreFiveBits) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    BitWriter w;
    w.write_varnat(v);
    EXPECT_EQ(w.bit_size(), 5u) << v;
    BitReader r(w);
    EXPECT_EQ(r.read_varnat(), v);
  }
}

TEST(BitIo, VarnatRoundTripRandom) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform(0, std::uint64_t{1} << rng.index(64));
    BitWriter w;
    w.write_varnat(v);
    BitReader r(w);
    EXPECT_EQ(r.read_varnat(), v);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(BitIo, SixtyFourBitBoundary) {
  BitWriter w;
  w.write(~std::uint64_t{0}, 64);
  w.write_varnat(~std::uint64_t{0});
  BitReader r(w);
  EXPECT_EQ(r.read(64), ~std::uint64_t{0});
  EXPECT_EQ(r.read_varnat(), ~std::uint64_t{0});
}

TEST(BitIo, AppendConcatenatesStreams) {
  BitWriter a;
  a.write(0b1011, 4);
  BitWriter b;
  b.write_varnat(123456);
  a.append(b);
  BitReader r(a);
  EXPECT_EQ(r.read(4), 0b1011u);
  EXPECT_EQ(r.read_varnat(), 123456u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitIo, MixedInterleavedRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    BitWriter w;
    for (int i = 0; i < 40; ++i) {
      const unsigned width = 1 + static_cast<unsigned>(rng.index(64));
      const std::uint64_t value =
          width == 64 ? rng.uniform(0, ~std::uint64_t{0})
                      : rng.uniform(0, (std::uint64_t{1} << width) - 1);
      w.write(value, width);
      fields.emplace_back(value, width);
    }
    BitReader r(w);
    for (auto [value, width] : fields) EXPECT_EQ(r.read(width), value);
  }
}

TEST(BitsFor, Values) {
  EXPECT_EQ(bits_for(0), 0u);
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 2u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 3u);
  EXPECT_EQ(bits_for(255), 8u);
  EXPECT_EQ(bits_for(256), 9u);
}

}  // namespace
}  // namespace lcert
