#include <gtest/gtest.h>

#include "src/graph/generators.hpp"
#include "src/treedepth/cops_robber.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/treedepth/exact.hpp"
#include "src/treedepth/heuristic.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

TEST(Treedepth, ClosedFormsPaths) {
  // td(P_n) = ceil(log2(n+1)).
  EXPECT_EQ(treedepth_of_path(1), 1u);
  EXPECT_EQ(treedepth_of_path(2), 2u);
  EXPECT_EQ(treedepth_of_path(3), 2u);
  EXPECT_EQ(treedepth_of_path(4), 3u);
  EXPECT_EQ(treedepth_of_path(7), 3u);
  EXPECT_EQ(treedepth_of_path(8), 4u);
}

TEST(Treedepth, ExactMatchesClosedFormOnPaths) {
  for (std::size_t n = 1; n <= 16; ++n)
    EXPECT_EQ(exact_treedepth(make_path(n)), treedepth_of_path(n)) << "P_" << n;
}

TEST(Treedepth, ExactMatchesClosedFormOnCycles) {
  for (std::size_t n = 3; n <= 14; ++n)
    EXPECT_EQ(exact_treedepth(make_cycle(n)), treedepth_of_cycle(n)) << "C_" << n;
}

TEST(Treedepth, ExactOnCliquesAndStars) {
  for (std::size_t n = 1; n <= 8; ++n) EXPECT_EQ(exact_treedepth(make_complete(n)), n);
  for (std::size_t n = 2; n <= 10; ++n) EXPECT_EQ(exact_treedepth(make_star(n)), 2u);
}

TEST(Treedepth, C8Is4AndWithApex5) {
  // The building block of the Theorem 2.5 gadget (Lemma 7.3).
  EXPECT_EQ(exact_treedepth(make_cycle(8)), 4u);
  const Graph g = glue_at_apex({make_cycle(8)});
  // Apex adjacent to one cycle vertex only: treedepth still <= 5 and >= 4.
  const std::size_t td = exact_treedepth(g);
  EXPECT_GE(td, 4u);
  EXPECT_LE(td, 5u);
}

TEST(Treedepth, ExactModelIsValidCoherentAndTight) {
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = make_random_connected(4 + rng.index(10), 0.3, rng);
    const auto result = exact_treedepth_with_model(g);
    EXPECT_TRUE(is_valid_model(g, result.model));
    EXPECT_TRUE(is_coherent_model(g, result.model));
    EXPECT_EQ(model_depth(result.model), result.treedepth);
  }
}

TEST(Treedepth, PathModelIsOptimal) {
  for (std::size_t n : {1u, 2u, 3u, 7u, 8u, 15u, 16u, 100u, 1000u}) {
    const RootedTree t = path_model(n);
    EXPECT_TRUE(is_valid_model(make_path(n), t));
    EXPECT_EQ(model_depth(t), treedepth_of_path(n)) << "P_" << n;
  }
}

TEST(Treedepth, CopsAndRobberAgreesWithExact) {
  Rng rng(32);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = make_random_connected(4 + rng.index(9), 0.35, rng);
    EXPECT_EQ(cops_and_robber_number(g), exact_treedepth(g));
  }
}

TEST(Treedepth, CopsAndRobberKnownValues) {
  EXPECT_EQ(cops_and_robber_number(make_path(7)), 3u);
  EXPECT_EQ(cops_and_robber_number(make_cycle(8)), 4u);
  EXPECT_EQ(cops_and_robber_number(make_complete(5)), 5u);
}

TEST(Treedepth, TreeStrategyCostEqualsModelDepth) {
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = make_random_connected(4 + rng.index(8), 0.3, rng);
    const auto result = exact_treedepth_with_model(g);
    EXPECT_EQ(simulate_tree_strategy(g, result.model), result.treedepth);
  }
}

TEST(Elimination, ValidAndInvalidModels) {
  const Graph p4 = make_path(4);
  // Balanced model of P4: 1 root, 0 and {2,3} below.
  RootedTree good({1, RootedTree::kNoParent, 1, 2});
  EXPECT_TRUE(is_valid_model(p4, good));
  // A star-shaped "model" rooted at 0 violates edge (2,3).
  RootedTree bad({RootedTree::kNoParent, 0, 0, 0});
  EXPECT_FALSE(is_valid_model(p4, bad));
}

TEST(Elimination, CoherenceDetectionAndRepair) {
  // P7 with the Figure 1 model is coherent.
  const Graph p7 = make_path(7);
  const RootedTree fig1 = path_model(7);
  EXPECT_TRUE(is_coherent_model(p7, fig1));

  // Build a valid but non-coherent model: a path 0-1-2-3 with model
  // root 1, children 0 and 2, and 3 hanging below 0?? — that is invalid.
  // Instead: path 0-1-2-3, model: 2 root; 1 child of 2; 0 child of 1; 3 child
  // of *1* (valid? edge (2,3) needs ancestry: 3 below 1 below 2 — ok;
  // coherence of (1 -> 3): G_3 = {3} must touch 1 — but 3's neighbor is 2.
  const Graph p4 = make_path(4);
  RootedTree askew({1, 2, RootedTree::kNoParent, 1});
  ASSERT_TRUE(is_valid_model(p4, askew));
  EXPECT_FALSE(is_coherent_model(p4, askew));
  const RootedTree fixed = make_coherent(p4, askew);
  EXPECT_TRUE(is_coherent_model(p4, fixed));
  EXPECT_LE(model_depth(fixed), model_depth(askew));
}

TEST(Elimination, ExitVertexTouchesParent) {
  Rng rng(34);
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = make_bounded_treedepth_graph(25, 4, 0.4, rng);
    const RootedTree t = make_coherent(inst.graph, inst.elimination_tree);
    for (Vertex v = 0; v < t.size(); ++v) {
      if (t.parent(v) == RootedTree::kNoParent) continue;
      const Vertex e = exit_vertex(inst.graph, t, v);
      EXPECT_TRUE(inst.graph.has_edge(e, t.parent(v)));
      EXPECT_TRUE(t.is_ancestor(v, e));
    }
  }
}

TEST(Heuristic, ProducesValidCoherentModels) {
  Rng rng(35);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = make_random_connected(30 + rng.index(30), 0.1, rng);
    const RootedTree t = heuristic_elimination_tree(g);
    EXPECT_TRUE(is_valid_model(g, t));
    EXPECT_TRUE(is_coherent_model(g, t));
  }
}

TEST(Heuristic, NearOptimalOnPaths) {
  for (std::size_t n : {15u, 63u, 255u}) {
    const RootedTree t = heuristic_elimination_tree(make_path(n));
    EXPECT_LE(model_depth(t), treedepth_of_path(n) + 1);
  }
}

TEST(Heuristic, WithinBoundOnGeneratedInstances) {
  Rng rng(36);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = make_bounded_treedepth_graph(60, 5, 0.3, rng);
    const RootedTree t = heuristic_elimination_tree(inst.graph);
    // Heuristics cannot beat the true treedepth but should stay sane.
    EXPECT_LE(model_depth(t), 60u);
    EXPECT_TRUE(is_valid_model(inst.graph, t));
  }
}

class TreedepthRandomAgreement : public ::testing::TestWithParam<int> {};

TEST_P(TreedepthRandomAgreement, ExactEqualsGameValue) {
  Rng rng(1000 + GetParam());
  const std::size_t n = 4 + rng.index(8);
  const Graph g = make_random_connected(n, 0.25 + 0.05 * (GetParam() % 5), rng);
  const std::size_t td = exact_treedepth(g);
  EXPECT_EQ(cops_and_robber_number(g), td);
  const auto result = exact_treedepth_with_model(g);
  EXPECT_EQ(result.treedepth, td);
  EXPECT_LE(model_depth(result.model), td);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreedepthRandomAgreement, ::testing::Range(0, 20));

}  // namespace
}  // namespace lcert
