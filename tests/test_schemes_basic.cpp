#include <gtest/gtest.h>

#include "src/cert/audit.hpp"
#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/schemes/spanning_tree.hpp"
#include "src/schemes/treedepth_scheme.hpp"
#include "src/treedepth/exact.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

TEST(SpanningTreeCert, HonestAssignmentVerifiesEverywhere) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_random_connected(3 + rng.index(20), 0.2, rng);
    assign_random_ids(g, rng);
    const auto fields = build_spanning_tree_cert(g, static_cast<Vertex>(rng.index(g.vertex_count())));
    std::vector<Certificate> certs(g.vertex_count());
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      BitWriter w;
      fields[v].encode(w);
      certs[v] = Certificate::from_writer(w);
    }
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      View view = make_view(g, certs, v);
      std::vector<SpanningTreeCert> nbs;
      for (const auto& nb : view.neighbors) {
        BitReader r = nb.certificate.reader();
        nbs.push_back(SpanningTreeCert::decode(r));
      }
      EXPECT_TRUE(check_spanning_tree_fields(view.as_ref(), fields[v], nbs, true)) << v;
    }
  }
}

TEST(VertexParityScheme, CompletenessOnEvenGraphs) {
  VertexParityScheme scheme;
  Rng rng(2);
  for (std::size_t n : {2u, 4u, 10u, 32u, 100u}) {
    Graph g = make_random_connected(n, 0.1, rng);
    assign_random_ids(g, rng);
    require_complete(scheme, g);
  }
}

TEST(VertexParityScheme, ProverRefusesOddGraphs) {
  VertexParityScheme scheme;
  Rng rng(3);
  Graph g = make_random_connected(7, 0.3, rng);
  EXPECT_FALSE(scheme.assign(g).has_value());
}

TEST(VertexParityScheme, SoundnessUnderAttack) {
  VertexParityScheme scheme;
  Rng rng(4);
  for (std::size_t n : {3u, 5u, 9u}) {
    Graph no = make_random_connected(n, 0.3, rng);
    assign_random_ids(no, rng);
    // Template from a yes-instance of nearby size (n+1 even).
    Graph yes = make_random_connected(n + 1, 0.3, rng);
    assign_random_ids(yes, rng);
    const auto tmpl = scheme.assign(yes);
    ASSERT_TRUE(tmpl.has_value());
    // Truncate the template to n certificates for the replay attack.
    std::vector<Certificate> tmpl_n(tmpl->begin(), tmpl->begin() + n);
    const auto forged = attack_soundness(scheme, no, &tmpl_n, rng);
    EXPECT_FALSE(forged.has_value()) << "attack '" << forged->attack << "' succeeded";
  }
}

TEST(VertexCountScheme, AcceptsExactlyTheTarget) {
  Rng rng(5);
  for (std::size_t n : {4u, 9u}) {
    VertexCountScheme scheme(n);
    Graph g = make_random_connected(n, 0.3, rng);
    assign_random_ids(g, rng);
    require_complete(scheme, g);
    Graph bigger = make_random_connected(n + 1, 0.3, rng);
    assign_random_ids(bigger, rng);
    EXPECT_FALSE(scheme.assign(bigger).has_value());
    const auto forged = attack_soundness(scheme, bigger, nullptr, rng);
    EXPECT_FALSE(forged.has_value());
  }
}

TEST(VertexParityScheme, CertificateSizeIsLogarithmic) {
  VertexParityScheme scheme;
  Rng rng(6);
  std::size_t prev_bits = 0;
  for (std::size_t n : {4u, 16u, 64u, 256u, 1024u}) {
    Graph g = make_random_tree(n, rng);
    if (n % 2 != 0) continue;
    assign_random_ids(g, rng);
    const std::size_t bits = certified_size_bits(scheme, g);
    // O(log n): at most ~4 varnat fields of ~2*log2(n^2) bits each.
    EXPECT_LE(bits, 30 + 12 * bits_for(n));
    EXPECT_GE(bits, prev_bits);  // monotone growth in this family
    prev_bits = bits;
  }
}

// ---------------------------------------------------------------------------
// MSO on trees (Theorem 2.2).
// ---------------------------------------------------------------------------

class MsoTreeSchemeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MsoTreeSchemeTest, CompleteAndConstantSize) {
  const auto entry = standard_tree_automata().at(GetParam());
  MsoTreeScheme scheme(entry);
  Rng rng(100 + GetParam());
  std::size_t max_bits = 0;
  for (int trial = 0; trial < 80; ++trial) {
    Graph tree = make_random_tree(1 + rng.index(40), rng);
    assign_random_ids(tree, rng);
    if (!scheme.holds(tree)) continue;
    require_complete(scheme, tree);
    max_bits = std::max(max_bits, certified_size_bits(scheme, tree));
  }
  // Theorem 2.2: constant-size certificates.
  EXPECT_LE(max_bits, scheme.certificate_bits());
}

TEST_P(MsoTreeSchemeTest, SoundOnNoInstances) {
  const auto entry = standard_tree_automata().at(GetParam());
  MsoTreeScheme scheme(entry);
  Rng rng(200 + GetParam());
  int attacked = 0;
  for (int trial = 0; trial < 60 && attacked < 8; ++trial) {
    Graph tree = make_random_tree(2 + rng.index(9), rng);
    assign_random_ids(tree, rng);
    if (scheme.holds(tree)) continue;
    ++attacked;
    EXPECT_FALSE(scheme.assign(tree).has_value());
    // Yes-template of the same size for replay attacks, if cheaply findable.
    std::optional<std::vector<Certificate>> tmpl;
    for (int k = 0; k < 30; ++k) {
      Graph cand = make_random_tree(tree.vertex_count(), rng);
      assign_random_ids(cand, rng);
      if (!scheme.holds(cand)) continue;
      tmpl = scheme.assign(cand);
      break;
    }
    const auto forged =
        attack_soundness(scheme, tree, tmpl.has_value() ? &*tmpl : nullptr, rng);
    EXPECT_FALSE(forged.has_value())
        << entry.name << ": attack '" << forged->attack << "' forged acceptance on\n"
        << tree.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(AllAutomata, MsoTreeSchemeTest,
                         ::testing::Range<std::size_t>(0, 8));

TEST(MsoTreeScheme, ExhaustiveSoundnessOnTinyInstance) {
  // Every assignment of <=4-bit certificates on a 4-vertex no-instance.
  const auto lib = standard_tree_automata();
  const auto& path_entry = lib[0];
  ASSERT_EQ(path_entry.name, "path");
  MsoTreeScheme scheme(path_entry);
  Graph star = make_star(4);  // not a path
  Rng rng(7);
  assign_random_ids(star, rng);
  const auto forged = exhaustive_soundness_attack(scheme, star, 4);
  EXPECT_FALSE(forged.has_value());
}

TEST(MsoTreeScheme, RejectsTamperedOrientation) {
  const auto entry = standard_tree_automata().at(0);  // path
  MsoTreeScheme scheme(entry);
  Rng rng(8);
  Graph tree = make_path(9);
  assign_random_ids(tree, rng);
  auto certs = scheme.assign(tree);
  ASSERT_TRUE(certs.has_value());
  // Corrupt one vertex's mod-3 counter; some vertex must reject.
  for (Vertex v = 0; v < tree.vertex_count(); ++v) {
    auto tampered = *certs;
    BitReader r = tampered[v].reader();
    const auto mod = r.read(2);
    const auto state = r.read(tampered[v].bit_size - 2 == 0 ? 1 : static_cast<unsigned>(tampered[v].bit_size - 2));
    BitWriter w;
    w.write((mod + 1) % 3, 2);
    w.write(state, static_cast<unsigned>(tampered[v].bit_size - 2));
    tampered[v] = Certificate::from_writer(w);
    EXPECT_FALSE(verify_assignment(scheme, tree, tampered).all_accept) << v;
  }
}

// ---------------------------------------------------------------------------
// Treedepth certification (Theorem 2.4).
// ---------------------------------------------------------------------------

TEST(TreedepthScheme, CompleteOnKnownFamilies) {
  Rng rng(9);
  // Paths: td(P_n) = ceil(log2(n+1)).
  for (std::size_t n : {1u, 3u, 7u, 15u}) {
    TreedepthScheme scheme(treedepth_of_path(n));
    Graph g = make_path(n);
    assign_random_ids(g, rng);
    require_complete(scheme, g);
  }
  // Cliques: td = n.
  for (std::size_t n : {2u, 4u, 6u}) {
    TreedepthScheme scheme(n);
    Graph g = make_complete(n);
    assign_random_ids(g, rng);
    require_complete(scheme, g);
  }
}

TEST(TreedepthScheme, ProverRefusesWhenBoundTooSmall) {
  TreedepthScheme scheme(2);
  Rng rng(10);
  Graph g = make_path(7);  // td = 3
  assign_random_ids(g, rng);
  EXPECT_FALSE(scheme.assign(g).has_value());
  EXPECT_FALSE(scheme.holds(g));
}

TEST(TreedepthScheme, CompleteOnGeneratedBoundedInstances) {
  Rng rng(11);
  for (int trial = 0; trial < 12; ++trial) {
    auto inst = make_bounded_treedepth_graph(14 + rng.index(6), 4, 0.35, rng);
    assign_random_ids(inst.graph, rng);
    RootedTree witness = inst.elimination_tree;
    TreedepthScheme scheme(4, [witness](const Graph&) { return witness; });
    require_complete(scheme, inst.graph);
  }
}

TEST(TreedepthScheme, SoundnessUnderAttack) {
  Rng rng(12);
  // td(C_8)=4: certify "td<=3" on C_8 must fail every attack.
  TreedepthScheme scheme(3);
  Graph no = make_cycle(8);
  assign_random_ids(no, rng);
  ASSERT_FALSE(scheme.holds(no));
  // Template from P_7 (td=3) with 8 vertices? Use P_8 truncated... use an
  // honest yes-instance of the same size: the star K_{1,7} has td 2.
  Graph yes = make_star(8);
  assign_random_ids(yes, rng);
  const auto tmpl = scheme.assign(yes);
  ASSERT_TRUE(tmpl.has_value());
  const auto forged = attack_soundness(scheme, no, &*tmpl, rng);
  EXPECT_FALSE(forged.has_value()) << "attack '" << forged->attack << "'";
}

TEST(TreedepthScheme, SoundnessAgainstWrongDepthClaims) {
  // Take honest certificates for td<=4 on C_8 and replay them against the
  // td<=3 verifier: every vertex's step-1 bound must catch lists that are too
  // long, or the tree checks must fail.
  Rng rng(13);
  Graph c8 = make_cycle(8);
  assign_random_ids(c8, rng);
  TreedepthScheme relaxed(4);
  const auto honest = relaxed.assign(c8);
  ASSERT_TRUE(honest.has_value());
  TreedepthScheme strict(3);
  EXPECT_FALSE(verify_assignment(strict, c8, *honest).all_accept);
}

TEST(TreedepthScheme, CertificateSizeScalesAsTLogN) {
  Rng rng(14);
  for (std::size_t budget : {3u, 5u}) {
    for (std::size_t n : {20u, 40u, 80u}) {
      auto inst = make_bounded_treedepth_graph(n, budget, 0.3, rng);
      assign_random_ids(inst.graph, rng);
      RootedTree witness = inst.elimination_tree;
      TreedepthScheme scheme(budget, [witness](const Graph&) { return witness; });
      const std::size_t bits = certified_size_bits(scheme, inst.graph);
      // O(t log n) with our varnat constants: t * (3 fields + ids).
      EXPECT_LE(bits, 40 + 10 * budget * bits_for(n * n)) << n << " " << budget;
    }
  }
}

}  // namespace
}  // namespace lcert
