// Incremental recertification layer (DESIGN.md §13).
//
// Two contracts are pinned here, both over randomized edit sequences:
//   1. RootedTree's patch API (graft_leaf / prune_leaf / reattach) leaves the
//      tree bit-identical to a cold RootedTree::from_graph over the mutated
//      graph — parent array, depths, and sorted children lists.
//   2. A live incr::CertifiedInstance stays bit-identical to a cold
//      prove_assignment over the accumulated graph after every edit, across
//      tree schemes — the incremental path is a pure speedup.
// The fuzz battery runs the same oracle (kIncrementalDivergence) inside
// random campaigns; these tests make the contract a deterministic tier-1
// gate with named edge cases (fallback scheme, raw edge edits, pure ID
// permutations, stats sanity).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "src/cert/prove.hpp"
#include "src/fuzz/mutators.hpp"
#include "src/graph/edit.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/incr/incremental.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/schemes/registry.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

// standard_tree_automata(): 2 = caterpillar, 4 = perfect-matching,
// 7 = leaves>=4 — one cheap run-state automaton, one parity-flavored one,
// and the widest counting one (k = 6).
constexpr std::size_t kCaterpillar = 2;
constexpr std::size_t kPerfectMatching = 4;
constexpr std::size_t kLeaves4 = 7;

void expect_same_tree(const RootedTree& got, const RootedTree& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.root(), want.root());
  for (std::size_t v = 0; v < want.size(); ++v) {
    EXPECT_EQ(got.parent(v), want.parent(v)) << "vertex " << v;
    EXPECT_EQ(got.depth(v), want.depth(v)) << "vertex " << v;
    const auto gc = got.children(v);
    const auto wc = want.children(v);
    ASSERT_EQ(gc.size(), wc.size()) << "vertex " << v;
    for (std::size_t i = 0; i < wc.size(); ++i) EXPECT_EQ(gc[i], wc[i]) << "vertex " << v;
  }
}

/// Mirrors a tree-preserving GraphEdit onto a RootedTree rooted at 0. The
/// subtree-swap descriptor is drawn under its own rooting, so under root 0
/// the deleted edge {a, c} is parent->child in either orientation; the
/// replacement edge {a, b} then re-roots the detached piece accordingly.
void apply_edit_to_tree(RootedTree& t, const GraphEdit& edit) {
  switch (edit.kind) {
    case EditKind::kLeafGraft: t.graft_leaf(edit.a); break;
    case EditKind::kLeafPrune: t.prune_leaf(edit.a); break;
    case EditKind::kSubtreeSwap:
      if (t.parent(edit.a) == edit.c) {
        t.reattach(edit.a, edit.a, edit.b);
      } else {
        ASSERT_EQ(t.parent(edit.c), edit.a) << "swap edge is not tree-adjacent";
        t.reattach(edit.c, edit.b, edit.a);
      }
      break;
    default: FAIL() << "edit kind has no tree image";
  }
}

GraphEdit make_edit(EditKind kind, Vertex a, Vertex b = 0, Vertex c = 0) {
  GraphEdit e;
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.c = c;
  return e;
}

TEST(IncrementalTree, PatchMatchesColdRebuildOnRandomEditSequences) {
  // 1000 independent sequences of 3 structural edits each; after every edit
  // the patched tree must equal a cold from_graph of the mutated graph.
  const std::vector<fuzz::MutatorKind> kinds = {
      EditKind::kLeafGraft, EditKind::kLeafPrune, EditKind::kSubtreeSwap};
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    Rng rng(seq + 1);
    Graph cur = make_random_tree(12, rng);
    assign_random_ids(cur, rng);
    RootedTree t = RootedTree::from_graph(cur, 0);
    for (int step = 0; step < 3; ++step) {
      const auto edit = fuzz::draw_edit(cur, kinds[rng.index(kinds.size())], rng);
      if (!edit.has_value()) continue;
      // The bare patch API keeps the rooting: pruning the root itself is the
      // incr layer's re-root concern, not RootedTree's.
      if (edit->kind == EditKind::kLeafPrune && edit->a == t.root()) continue;
      ASSERT_NO_FATAL_FAILURE(apply_edit_to_tree(t, *edit))
          << "seq " << seq << " step " << step << ": " << to_string(*edit);
      cur = apply_edit(cur, *edit);
      ASSERT_NO_FATAL_FAILURE(expect_same_tree(t, RootedTree::from_graph(cur, 0)))
          << "seq " << seq << " step " << step << ": " << to_string(*edit);
    }
  }
}

TEST(IncrementalTree, GraftReturnsNewIndexAndReattachReturnsPath) {
  // path 0-1-2-3
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  RootedTree t = RootedTree::from_graph(g, 0);
  EXPECT_EQ(t.graft_leaf(3), 4u);
  EXPECT_EQ(t.parent(4), 3u);
  EXPECT_EQ(t.depth(4), 4u);
  // Move the subtree rooted at 2, re-rooted at the grafted leaf 4, under 0:
  // the returned path runs from the new local root to the old one.
  const std::vector<std::size_t> path = t.reattach(2, 4, 0);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), 4u);
  EXPECT_EQ(path.back(), 2u);
  EXPECT_EQ(t.parent(4), 0u);
  EXPECT_EQ(t.parent(3), 4u);
  EXPECT_EQ(t.parent(2), 3u);
}

void expect_matches_cold(const Scheme& scheme, const incr::CertifiedInstance& live,
                         const Graph& expected, const RunOptions& options,
                         const std::string& where) {
  const auto cold = prove_assignment(scheme, expected, options).certificates;
  const auto& ours = live.certificates();
  ASSERT_EQ(ours.has_value(), cold.has_value()) << where;
  if (ours.has_value()) {
    EXPECT_TRUE(*ours == *cold) << where << ": certificates diverged";
  }
}

TEST(IncrementalCertify, BitIdenticalToColdProveAcrossTreeSchemes) {
  // >= 500 randomized trials (170 per scheme x 3 schemes), each a 4-edit walk
  // at n in [20, 40); certificates must match a cold prove_assignment of the
  // accumulated graph bit for bit after init and after every edit — on both
  // sides of the property boundary (uncertified states must agree too).
  const auto kinds = fuzz::tree_preserving_mutators();
  RunOptions options;
  options.num_threads = 1;
  for (const std::size_t automaton : {kCaterpillar, kPerfectMatching, kLeaves4}) {
    const MsoTreeScheme scheme(standard_tree_automata()[automaton]);
    for (std::uint64_t trial = 0; trial < 170; ++trial) {
      Rng rng(automaton * 1000 + trial);
      Graph cur = make_random_tree(20 + rng.index(20), rng);
      assign_random_ids(cur, rng);
      incr::CertifiedInstance live(scheme, options);
      ASSERT_TRUE(live.incremental());
      live.init(cur);
      ASSERT_NO_FATAL_FAILURE(
          expect_matches_cold(scheme, live, cur, options,
                              scheme.name() + " trial " + std::to_string(trial) + " init"));
      for (int step = 0; step < 4; ++step) {
        const auto edit = fuzz::draw_edit(cur, kinds[rng.index(kinds.size())], rng);
        if (!edit.has_value()) continue;
        const IncrementalStats st = live.apply(*edit);
        cur = apply_edit(cur, *edit);
        EXPECT_TRUE(st.reverify_clean);
        ASSERT_NO_FATAL_FAILURE(expect_matches_cold(
            scheme, live, cur, options,
            scheme.name() + " trial " + std::to_string(trial) + " step " +
                std::to_string(step) + " (" + to_string(*edit) + ")"));
      }
    }
  }
}

TEST(IncrementalCertify, FallbackSchemeReprovesColdEveryEdit) {
  // vertex-parity ships no incremental prover: the layer must fall back to a
  // cold re-prove per edit with identical results — including the certified
  // flip when a graft makes |V| odd.
  const RegisteredScheme& entry = find_scheme("vertex-parity");
  const auto scheme = entry.make();
  RunOptions options;
  options.num_threads = 1;
  Rng rng(7);
  Graph cur = entry.family.yes_instance(8, rng);
  ASSERT_EQ(cur.vertex_count() % 2, 0u);

  incr::CertifiedInstance live(*scheme, options);
  EXPECT_FALSE(live.incremental());
  ASSERT_TRUE(live.init(cur).has_value());

  VertexId max_id = 0;
  for (Vertex v = 0; v < cur.vertex_count(); ++v) max_id = std::max(max_id, cur.id(v));
  GraphEdit graft = make_edit(EditKind::kLeafGraft, 0);
  graft.fresh_id = max_id + 1;
  const IncrementalStats st = live.apply(graft);
  cur = apply_edit(cur, graft);
  EXPECT_TRUE(st.full_reprove);
  EXPECT_FALSE(st.certified);
  ASSERT_NO_FATAL_FAILURE(expect_matches_cold(*scheme, live, cur, options, "odd |V|"));

  GraphEdit graft2 = make_edit(EditKind::kLeafGraft, 1);
  graft2.fresh_id = max_id + 2;
  const IncrementalStats st2 = live.apply(graft2);
  cur = apply_edit(cur, graft2);
  EXPECT_TRUE(st2.certified);
  ASSERT_NO_FATAL_FAILURE(expect_matches_cold(*scheme, live, cur, options, "even |V|"));
}

TEST(IncrementalCertify, RawEdgeEditsThrowAndLeaveInstanceUntouched) {
  const MsoTreeScheme scheme(standard_tree_automata()[kPerfectMatching]);
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  Rng rng(3);
  assign_random_ids(g, rng);
  RunOptions options;
  options.num_threads = 1;
  incr::CertifiedInstance live(scheme, options);
  ASSERT_TRUE(live.init(g).has_value());

  EXPECT_THROW(live.apply(make_edit(EditKind::kEdgeAdd, 0, 2)), std::invalid_argument);
  EXPECT_THROW(live.apply(make_edit(EditKind::kEdgeDelete, 1, 2)), std::invalid_argument);
  // The rejected edits must not have perturbed the live state.
  ASSERT_NO_FATAL_FAILURE(expect_matches_cold(scheme, live, g, options, "after throw"));
}

TEST(IncrementalCertify, IdPermutationChangesNoCertificates) {
  // MSO-on-trees certificates encode (depth mod 3, run state) only — a pure
  // relabeling is a zero-dirty edit: nothing re-proved, everything reused.
  const MsoTreeScheme scheme(standard_tree_automata()[kCaterpillar]);
  Rng rng(13);
  Graph g = make_caterpillar(6, 2);
  assign_random_ids(g, rng);
  RunOptions options;
  options.num_threads = 1;
  incr::CertifiedInstance live(scheme, options);
  ASSERT_TRUE(live.init(g).has_value());

  GraphEdit permute;
  permute.kind = EditKind::kIdPermute;
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    permute.ids.push_back(g.id(g.vertex_count() - 1 - v));
  const IncrementalStats st = live.apply(permute);
  const Graph relabeled = apply_edit(g, permute);

  EXPECT_TRUE(st.certified);
  EXPECT_FALSE(st.full_reprove);
  EXPECT_EQ(st.changed_certificates, 0u);
  EXPECT_EQ(st.reproved_vertices, 0u);
  EXPECT_DOUBLE_EQ(st.reuse_ratio, 1.0);
  ASSERT_NO_FATAL_FAILURE(expect_matches_cold(scheme, live, relabeled, options, "permute"));
}

TEST(IncrementalCertify, StatsStayWithinTheDirtySlice) {
  // A deep graft on a leaves>=4 instance: the repair must stay incremental
  // and its counters must describe a slice, not the whole instance.
  const MsoTreeScheme scheme(standard_tree_automata()[kLeaves4]);
  Rng rng(5);
  Graph g = make_random_tree(64, rng);
  assign_random_ids(g, rng);
  const RootedTree t = RootedTree::from_graph(g, 0);
  std::size_t anchor = 0;
  for (std::size_t v = 0; v < t.size(); ++v)
    if (t.depth(v) > t.depth(anchor)) anchor = v;

  RunOptions options;
  options.num_threads = 1;
  incr::CertifiedInstance live(scheme, options);
  ASSERT_TRUE(live.init(g).has_value());

  VertexId max_id = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v) max_id = std::max(max_id, g.id(v));
  GraphEdit graft = make_edit(EditKind::kLeafGraft, static_cast<Vertex>(anchor));
  graft.fresh_id = max_id + 1;
  const IncrementalStats st = live.apply(graft);
  EXPECT_TRUE(st.certified);
  EXPECT_FALSE(st.full_reprove);
  EXPECT_TRUE(st.reverify_clean);
  EXPECT_GE(st.dirty_path_len, 1u);
  EXPECT_LE(st.dirty_path_len, t.height() + 2);
  EXPECT_GE(st.reproved_vertices, 1u);
  EXPECT_LE(st.reproved_vertices, g.vertex_count());
  EXPECT_GE(st.reuse_ratio, 0.0);
  EXPECT_LE(st.reuse_ratio, 1.0);
  // The grafted leaf's certificate is necessarily new.
  EXPECT_GE(st.changed_certificates, 1u);
}

}  // namespace
}  // namespace lcert
