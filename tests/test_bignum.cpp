#include "src/util/bignum.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace lcert {
namespace {

TEST(BigNat, SmallArithmetic) {
  BigNat a(123), b(456);
  EXPECT_EQ((a + b).to_u64(), 579u);
  EXPECT_EQ((b - a).to_u64(), 333u);
  EXPECT_EQ((a * b).to_u64(), 56088u);
  EXPECT_EQ(BigNat(0).to_decimal(), "0");
  EXPECT_TRUE(BigNat(0).is_zero());
}

TEST(BigNat, DecimalRoundTrip) {
  const std::string digits = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigNat::from_decimal(digits).to_decimal(), digits);
}

TEST(BigNat, FactorialKnownValues) {
  EXPECT_EQ(BigNat::factorial(0).to_u64(), 1u);
  EXPECT_EQ(BigNat::factorial(10).to_u64(), 3628800u);
  EXPECT_EQ(BigNat::factorial(25).to_decimal(), "15511210043330985984000000");
}

TEST(BigNat, PowKnownValues) {
  EXPECT_EQ(BigNat::pow(BigNat(2), 64).to_decimal(), "18446744073709551616");
  EXPECT_EQ(BigNat::pow(BigNat(10), 30).to_decimal(), std::string("1") + std::string(30, '0'));
}

TEST(BigNat, BinomialKnownValues) {
  EXPECT_EQ(BigNat::binomial(10, 3).to_u64(), 120u);
  EXPECT_EQ(BigNat::binomial(52, 26).to_decimal(), "495918532948104");
  EXPECT_EQ(BigNat::binomial(3, 7).to_u64(), 0u);
}

TEST(BigNat, DivModAgainstMultiplication) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    BigNat a = BigNat(rng.uniform(0, ~std::uint64_t{0})) * BigNat(rng.uniform(1, 1u << 30));
    BigNat b(rng.uniform(1, ~std::uint64_t{0}));
    BigNat q, r;
    BigNat::div_mod(a, b, q, r);
    EXPECT_TRUE(r < b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(BigNat, ComparisonOrdering) {
  EXPECT_TRUE(BigNat(5) < BigNat(6));
  EXPECT_TRUE(BigNat::pow(BigNat(2), 100) > BigNat::pow(BigNat(2), 99));
  EXPECT_EQ(BigNat(7), BigNat(7));
}

TEST(BigNat, BitLength) {
  EXPECT_EQ(BigNat(0).bit_length(), 0u);
  EXPECT_EQ(BigNat(1).bit_length(), 1u);
  EXPECT_EQ(BigNat(255).bit_length(), 8u);
  EXPECT_EQ(BigNat::pow(BigNat(2), 100).bit_length(), 101u);
}

TEST(BigNat, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigNat(3) - BigNat(4), std::underflow_error);
}

TEST(BigNat, ToU64OverflowThrows) {
  EXPECT_THROW(BigNat::pow(BigNat(2), 70).to_u64(), std::overflow_error);
}

TEST(BigNat, StressAddSubRoundTrip) {
  Rng rng(3);
  BigNat acc(0);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.uniform(0, ~std::uint64_t{0}));
    acc += BigNat(values.back());
  }
  for (std::size_t i = values.size(); i-- > 0;) acc -= BigNat(values[i]);
  EXPECT_TRUE(acc.is_zero());
}

}  // namespace
}  // namespace lcert
