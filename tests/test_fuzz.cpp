// The fuzzing campaign engine (ISSUE 4 tentpole).
//
// Deliberately broken schemes prove the campaign actually catches bugs: an
// off-by-one verifier (accepts degree < 3 instead of <= 3) must be found,
// shrunk to a minimal star, and replay bit-identically from (seed, trial); a
// corrupted verify_batch override must trip the batch-divergence oracle. The
// determinism contract — identical findings for every thread count — is
// checked directly, and the registered schemes must come out of a seeded
// campaign clean.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/fuzz/campaign.hpp"
#include "src/fuzz/mutators.hpp"
#include "src/fuzz/oracles.hpp"
#include "src/fuzz/shrink.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/io.hpp"
#include "src/schemes/registry.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

using fuzz::CampaignOptions;
using fuzz::CampaignResult;
using fuzz::Finding;
using fuzz::MutatorKind;
using fuzz::Oracle;

// ---------------------------------------------------------------------------
// Broken-scheme fixtures.
// ---------------------------------------------------------------------------

/// Property: maximum degree <= 3. The verifier is off by one — it accepts
/// only degree < 3 — so any yes-instance containing a degree-3 vertex is a
/// completeness counterexample. The minimal repro is the star K_{1,3}.
class OffByOneDegreeScheme final : public Scheme {
 public:
  std::string name() const override { return "test-max-degree-3-off-by-one"; }
  bool holds(const Graph& g) const override {
    for (Vertex v = 0; v < g.vertex_count(); ++v)
      if (g.degree(v) > 3) return false;
    return true;
  }
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override {
    if (!holds(g)) return std::nullopt;
    return std::vector<Certificate>(g.vertex_count());
  }
  bool verify(const ViewRef& view) const override { return view.degree() < 3; }
};

/// Correct per-vertex verifier, but the batched override corrupts the last
/// slot of every batch: the batch-divergence oracle must notice.
class CorruptBatchScheme final : public Scheme {
 public:
  std::string name() const override { return "test-corrupt-batch"; }
  bool holds(const Graph&) const override { return true; }
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override {
    return std::vector<Certificate>(g.vertex_count());
  }
  bool verify(const ViewRef&) const override { return true; }
  void verify_batch(std::span<const ViewRef> views,
                    std::span<std::uint8_t> accept) const override {
    Scheme::verify_batch(views, accept);
    if (!accept.empty()) accept[accept.size() - 1] ^= 1;
  }
};

InstanceFamily degree_family() {
  InstanceFamily family;
  // Paths have max degree 2: one leaf graft away from the degree-3 boundary.
  family.yes_instance = [](std::size_t n, Rng& rng) {
    Graph g = make_path(std::max<std::size_t>(n, 3));
    assign_random_ids(g, rng);
    return g;
  };
  family.no_instance = [](std::size_t n, Rng& rng) {
    Graph g = make_star(std::max<std::size_t>(n, 5));  // center degree >= 4
    assign_random_ids(g, rng);
    return g;
  };
  family.supports_any_graph = true;
  family.mutators = fuzz::all_mutators();
  family.has_reference_oracle = true;
  family.reference_oracle = [](const Graph& g) {
    for (Vertex v = 0; v < g.vertex_count(); ++v)
      if (g.degree(v) > 3) return false;
    return true;
  };
  family.reference_oracle_max_n = 4096;
  return family;
}

CampaignOptions small_campaign(std::uint64_t seed, std::size_t trials) {
  CampaignOptions options;
  options.seed = seed;
  options.trials = trials;
  options.base_n = 10;
  options.attack.random_trials = 16;
  options.attack.mutation_trials = 16;
  return options;
}

std::string finding_fingerprint(const Finding& f) {
  return std::to_string(f.trial) + "|" + std::to_string(f.seed) + "|" +
         fuzz::oracle_name(f.oracle) + "|" + f.detail + "|" + to_edge_list(f.graph) +
         "|" + to_edge_list(f.original);
}

// ---------------------------------------------------------------------------
// Mutators.
// ---------------------------------------------------------------------------

TEST(FuzzMutators, TreePreservingMutatorsKeepTrees) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    Graph g = make_random_tree(2 + rng.index(12), rng);
    assign_random_ids(g, rng);
    for (const MutatorKind kind : fuzz::tree_preserving_mutators()) {
      const auto mutated = fuzz::apply_mutator(g, kind, rng);
      if (!mutated.has_value()) continue;
      EXPECT_TRUE(mutated->is_connected()) << fuzz::mutator_name(kind);
      EXPECT_EQ(mutated->edge_count(), mutated->vertex_count() - 1)
          << fuzz::mutator_name(kind);
    }
  }
}

TEST(FuzzMutators, AllMutatorsPreserveConnectivity) {
  Rng rng(8);
  for (int round = 0; round < 50; ++round) {
    Graph g = make_random_connected(3 + rng.index(10), 0.3, rng);
    assign_random_ids(g, rng);
    for (const MutatorKind kind : fuzz::all_mutators()) {
      const auto mutated = fuzz::apply_mutator(g, kind, rng);
      if (!mutated.has_value()) continue;
      EXPECT_TRUE(mutated->is_connected()) << fuzz::mutator_name(kind);
    }
  }
}

TEST(FuzzMutators, IdPermutePreservesStructure) {
  Rng rng(9);
  Graph g = make_random_tree(8, rng);
  assign_random_ids(g, rng);
  const auto mutated = fuzz::apply_mutator(g, MutatorKind::kIdPermute, rng);
  ASSERT_TRUE(mutated.has_value());
  EXPECT_EQ(mutated->edges(), g.edges());
}

// ---------------------------------------------------------------------------
// Campaign against the broken fixtures: find, shrink, replay.
// ---------------------------------------------------------------------------

TEST(FuzzCampaign, FindsOffByOneVerifier) {
  OffByOneDegreeScheme scheme;
  const InstanceFamily family = degree_family();
  const CampaignResult result =
      fuzz::run_campaign(scheme, family, small_campaign(/*seed=*/1, /*trials=*/300));
  ASSERT_FALSE(result.findings.empty()) << "campaign missed a planted completeness bug";
  const Finding& f = result.findings.front();
  EXPECT_EQ(f.oracle, Oracle::kVerifierRejectedHonest);
  // Shrunk to (near) minimal: K_{1,3} has 4 vertices. Allow a little slack —
  // shrinking is greedy, not exhaustive — but the mutation debris must be
  // gone.
  EXPECT_LE(f.graph.vertex_count(), 6u);
  bool has_degree3 = false;
  for (Vertex v = 0; v < f.graph.vertex_count(); ++v)
    if (f.graph.degree(v) == 3) has_degree3 = true;
  EXPECT_TRUE(has_degree3) << to_edge_list(f.graph);
}

TEST(FuzzCampaign, FindingReplaysFromSeedAndTrial) {
  OffByOneDegreeScheme scheme;
  const InstanceFamily family = degree_family();
  const CampaignOptions options = small_campaign(/*seed=*/1, /*trials=*/300);
  const CampaignResult campaign = fuzz::run_campaign(scheme, family, options);
  ASSERT_FALSE(campaign.findings.empty());
  for (const Finding& f : campaign.findings) {
    const CampaignResult replay = fuzz::replay_trial(scheme, family, options, f.trial);
    ASSERT_EQ(replay.findings.size(), 1u) << "trial " << f.trial << " did not replay";
    EXPECT_EQ(finding_fingerprint(replay.findings.front()), finding_fingerprint(f));
  }
}

TEST(FuzzCampaign, FindingsAreIdenticalAcrossThreadCounts) {
  OffByOneDegreeScheme scheme;
  const InstanceFamily family = degree_family();
  CampaignOptions serial = small_campaign(/*seed=*/5, /*trials=*/400);
  serial.num_threads = 1;
  CampaignOptions parallel = serial;
  parallel.num_threads = 8;
  const CampaignResult a = fuzz::run_campaign(scheme, family, serial);
  const CampaignResult b = fuzz::run_campaign(scheme, family, parallel);
  ASSERT_FALSE(a.findings.empty());
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i)
    EXPECT_EQ(finding_fingerprint(a.findings[i]), finding_fingerprint(b.findings[i]));
}

TEST(FuzzCampaign, FindsBatchDivergence) {
  CorruptBatchScheme scheme;
  InstanceFamily family = degree_family();
  family.has_reference_oracle = false;  // property is trivially true
  const CampaignResult result =
      fuzz::run_campaign(scheme, family, small_campaign(/*seed=*/3, /*trials=*/50));
  ASSERT_FALSE(result.findings.empty());
  EXPECT_EQ(result.findings.front().oracle, Oracle::kBatchDivergence);
}

TEST(FuzzCampaign, ShrinkKeepsTheSameOracleFiring) {
  OffByOneDegreeScheme scheme;
  const InstanceFamily family = degree_family();
  const CampaignResult result =
      fuzz::run_campaign(scheme, family, small_campaign(/*seed=*/1, /*trials=*/300));
  ASSERT_FALSE(result.findings.empty());
  const Finding& f = result.findings.front();
  Rng rng(f.seed);
  const auto outcome = fuzz::check_instance(scheme, family, f.graph, rng,
                                            small_campaign(1, 1).attack);
  ASSERT_TRUE(outcome.violation.has_value());
  EXPECT_EQ(outcome.violation->oracle, f.oracle);
}

TEST(FuzzCampaign, ReproSnippetContainsReplayCoordinates) {
  OffByOneDegreeScheme scheme;
  const InstanceFamily family = degree_family();
  const CampaignResult result =
      fuzz::run_campaign(scheme, family, small_campaign(/*seed=*/1, /*trials=*/300));
  ASSERT_FALSE(result.findings.empty());
  const std::string snippet = fuzz::repro_snippet(result.findings.front(), "some-key");
  EXPECT_NE(snippet.find("trial " + std::to_string(result.findings.front().trial)),
            std::string::npos);
  EXPECT_NE(snippet.find("parse_edge_list"), std::string::npos);
  EXPECT_NE(snippet.find("some-key"), std::string::npos);
}

TEST(FuzzCampaign, TimeBudgetModeTerminates) {
  OffByOneDegreeScheme scheme;
  const InstanceFamily family = degree_family();
  CampaignOptions options = small_campaign(/*seed=*/2, /*trials=*/0);
  options.time_budget_s = 0.2;
  const CampaignResult result = fuzz::run_campaign(scheme, family, options);
  // Wall-clock mode stops on findings or budget; either way it must return
  // and report honest stats.
  EXPECT_GT(result.stats.trials_run + result.stats.trials_skipped, 0u);
  EXPECT_GT(result.stats.seconds, 0.0);
}

// ---------------------------------------------------------------------------
// The registered schemes must survive a seeded campaign.
// ---------------------------------------------------------------------------

class RegistryFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RegistryFuzz, SeededCampaignFindsNothing) {
  const RegisteredScheme entry = scheme_registry()[GetParam()];
  const auto scheme = entry.make();
  CampaignOptions options = small_campaign(/*seed=*/11, /*trials=*/150);
  const CampaignResult result = fuzz::run_campaign(*scheme, entry.family, options);
  EXPECT_GT(result.stats.trials_run, 0u) << entry.key;
  for (const Finding& f : result.findings)
    ADD_FAILURE() << entry.key << ": " << fuzz::oracle_name(f.oracle) << " at trial "
                  << f.trial << " (seed " << f.seed << "): " << f.detail << "\n"
                  << to_edge_list(f.graph);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RegistryFuzz,
                         ::testing::Range<std::size_t>(0, scheme_registry().size()),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           std::string key = scheme_registry()[info.param].key;
                           std::replace(key.begin(), key.end(), '-', '_');
                           return key;
                         });

// ---------------------------------------------------------------------------
// Registry API.
// ---------------------------------------------------------------------------

TEST(RegistryApi, TryFindSchemeReturnsNullptrOnUnknownKey) {
  EXPECT_EQ(try_find_scheme("no-such-scheme"), nullptr);
  const RegisteredScheme* entry = try_find_scheme("vertex-parity");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->key, "vertex-parity");
}

TEST(RegistryApi, EveryFamilyDeclaresMutatorsAndGenerators) {
  for (const auto& entry : scheme_registry()) {
    EXPECT_TRUE(static_cast<bool>(entry.family.yes_instance)) << entry.key;
    EXPECT_TRUE(static_cast<bool>(entry.family.no_instance)) << entry.key;
    EXPECT_FALSE(entry.family.mutators.empty()) << entry.key;
    if (entry.family.has_reference_oracle) {
      EXPECT_TRUE(static_cast<bool>(entry.family.reference_oracle)) << entry.key;
      EXPECT_GT(entry.family.reference_oracle_max_n, 0u) << entry.key;
    }
  }
}

TEST(RegistryApi, PromiseFamiliesOnlyCarryTreePreservingMutators) {
  const auto tree_safe = fuzz::tree_preserving_mutators();
  for (const auto& entry : scheme_registry()) {
    if (entry.family.supports_any_graph) continue;
    for (const MutatorKind kind : entry.family.mutators)
      EXPECT_TRUE(std::find(tree_safe.begin(), tree_safe.end(), kind) != tree_safe.end())
          << entry.key << " declares non-tree-safe mutator " << fuzz::mutator_name(kind);
  }
}

// Graph file round trip used by the .lcg repro artifacts.
TEST(GraphFileIo, SaveLoadRoundTrip) {
  Rng rng(13);
  Graph g = make_random_connected(9, 0.4, rng);
  assign_random_ids(g, rng);
  const std::string path = ::testing::TempDir() + "/fuzz_roundtrip.lcg";
  save_graph(g, path);
  const Graph back = load_graph(path);
  EXPECT_EQ(back.edges(), g.edges());
  for (Vertex v = 0; v < g.vertex_count(); ++v) EXPECT_EQ(back.id(v), g.id(v));
}

}  // namespace
}  // namespace lcert
