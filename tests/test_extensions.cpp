// Tests for the paper's secondary content: the Section 2.3 tree-diameter
// scheme, Appendix A.1's radius-3 model gap, and the Section 4 labeled-tree
// (LCL) extension of Theorem 2.2.
#include <gtest/gtest.h>

#include "src/cert/audit.hpp"
#include "src/cert/ball.hpp"
#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/lcl/lcl_scheme.hpp"
#include "src/schemes/tree_diameter.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

// ---------------------------------------------------------------------------
// TreeDiameterScheme (Section 2.3).
// ---------------------------------------------------------------------------

std::size_t tree_diameter(const Graph& g) {
  const auto d0 = g.bfs_distances(0);
  Vertex far = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (d0[v] > d0[far]) far = v;
  const auto d1 = g.bfs_distances(far);
  std::size_t out = 0;
  for (std::size_t d : d1) out = std::max(out, d);
  return out;
}

TEST(TreeDiameter, HoldsMatchesTrueDiameter) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph t = make_random_tree(2 + rng.index(25), rng);
    const std::size_t diam = tree_diameter(t);
    EXPECT_TRUE(TreeDiameterScheme(diam).holds(t));
    if (diam > 0) {
      EXPECT_FALSE(TreeDiameterScheme(diam - 1).holds(t));
    }
  }
}

TEST(TreeDiameter, CompleteAndConstantSize) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Graph t = make_random_tree(2 + rng.index(40), rng);
    assign_random_ids(t, rng);
    const std::size_t diam = tree_diameter(t);
    TreeDiameterScheme scheme(diam);
    require_complete(scheme, t);
    EXPECT_LE(certified_size_bits(scheme, t), scheme.certificate_bits());
  }
}

TEST(TreeDiameter, SizeIndependentOfN) {
  Rng rng(3);
  TreeDiameterScheme scheme(6);
  std::size_t bits_small = 0, bits_large = 0;
  {
    Graph t = make_caterpillar(5, 1);  // diameter 6
    assign_random_ids(t, rng);
    bits_small = certified_size_bits(scheme, t);
  }
  {
    Graph t = make_caterpillar(5, 400);
    assign_random_ids(t, rng);
    bits_large = certified_size_bits(scheme, t);
  }
  EXPECT_EQ(bits_small, bits_large);
}

TEST(TreeDiameter, SoundUnderAttack) {
  Rng rng(4);
  TreeDiameterScheme scheme(3);
  Graph no = make_path(6);  // diameter 5
  assign_random_ids(no, rng);
  ASSERT_FALSE(scheme.holds(no));
  Graph yes = make_star(6);  // diameter 2
  assign_random_ids(yes, rng);
  const auto tmpl = scheme.assign(yes);
  ASSERT_TRUE(tmpl.has_value());
  const auto forged = attack_soundness(scheme, no, &*tmpl, rng);
  EXPECT_FALSE(forged.has_value()) << forged->attack;
}

TEST(TreeDiameter, ExhaustiveSoundnessOnTinyPath) {
  Rng rng(5);
  TreeDiameterScheme scheme(2);
  Graph no = make_path(4);  // diameter 3
  assign_random_ids(no, rng);
  const auto forged = exhaustive_soundness_attack(scheme, no, 4);
  EXPECT_FALSE(forged.has_value());
}

// ---------------------------------------------------------------------------
// Radius-3 views (Appendix A.1).
// ---------------------------------------------------------------------------

TEST(BallView, StructureOfBall) {
  Rng rng(6);
  Graph g = make_cycle(8);
  assign_random_ids(g, rng);
  const std::vector<Certificate> none(8);
  const BallView view = make_ball_view(g, none, 0, 2);
  EXPECT_EQ(view.ball.vertex_count(), 5u);  // 0, two at 1, two at 2
  EXPECT_EQ(view.distance[0], 0u);
  // The ball is the induced path around vertex 0.
  EXPECT_EQ(view.ball.edge_count(), 4u);
}

TEST(BallView, Diameter2FreeAtRadius3) {
  Rng rng(7);
  // Yes-instances: stars and complete graphs (diameter <= 2).
  EXPECT_TRUE(decide_diameter_le_2_radius_3(make_star(12)));
  EXPECT_TRUE(decide_diameter_le_2_radius_3(make_complete(8)));
  EXPECT_TRUE(decide_diameter_le_2_radius_3(make_complete_bipartite(4, 5)));
  // No-instances: paths and long cycles.
  EXPECT_FALSE(decide_diameter_le_2_radius_3(make_path(5)));
  EXPECT_FALSE(decide_diameter_le_2_radius_3(make_cycle(7)));
  // Random cross-check against true diameter.
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = make_random_connected(3 + rng.index(10), 0.4, rng);
    bool diam_le_2 = true;
    for (Vertex v = 0; v < g.vertex_count(); ++v)
      for (std::size_t d : g.bfs_distances(v)) diam_le_2 = diam_le_2 && d <= 2;
    EXPECT_EQ(decide_diameter_le_2_radius_3(g), diam_le_2) << g.to_string();
  }
}

TEST(BallView, RadiusTooSmallThrows) {
  Graph g = make_path(4);
  const std::vector<Certificate> none(4);
  const BallView view = make_ball_view(g, none, 0, 2);
  EXPECT_THROW(check_diameter_le_2_at_radius_3(view), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Labeled trees / LCL certification (Section 4 + Appendix C.2).
// ---------------------------------------------------------------------------

LabeledTreeInstance random_instance(std::size_t n, double mark_p, Rng& rng) {
  LabeledTreeInstance inst;
  inst.tree = make_random_tree(n, rng);
  assign_random_ids(inst.tree, rng);
  inst.labels.resize(n);
  for (auto& l : inst.labels) l = rng.coin(mark_p) ? 1 : 0;
  return inst;
}

class LabeledAutomata : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LabeledAutomata, SchemeMatchesOracle) {
  const auto entry = standard_labeled_automata().at(GetParam());
  LclTreeScheme scheme(entry);
  Rng rng(100 + GetParam());
  int yes_seen = 0, no_seen = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const auto inst = random_instance(1 + rng.index(12), 0.3, rng);
    const bool expected = entry.oracle(inst);
    const auto certs = scheme.assign(inst);
    EXPECT_EQ(certs.has_value(), expected) << entry.name;
    if (expected) {
      ++yes_seen;
      ASSERT_TRUE(certs.has_value());
      EXPECT_TRUE(verify_labeled_assignment(scheme, inst, *certs).all_accept);
      EXPECT_LE(verify_labeled_assignment(scheme, inst, *certs).max_certificate_bits,
                scheme.certificate_bits());
    } else {
      ++no_seen;
    }
  }
  EXPECT_GT(yes_seen, 3) << "sweep degenerate for " << entry.name;
  EXPECT_GT(no_seen, 3) << "sweep degenerate for " << entry.name;
}

INSTANTIATE_TEST_SUITE_P(AllLabeled, LabeledAutomata, ::testing::Range<std::size_t>(0, 3));

TEST(LabeledAutomata, RandomCertificatesAreRejectedOnNoInstances) {
  Rng rng(8);
  for (const auto& entry : standard_labeled_automata()) {
    LclTreeScheme scheme(entry);
    int attacked = 0;
    for (int trial = 0; trial < 60 && attacked < 6; ++trial) {
      const auto inst = random_instance(2 + rng.index(8), 0.3, rng);
      if (entry.oracle(inst)) continue;
      ++attacked;
      for (int attempt = 0; attempt < 120; ++attempt) {
        std::vector<Certificate> certs(inst.tree.vertex_count());
        for (auto& c : certs) {
          BitWriter w;
          for (std::size_t bit = 0; bit < scheme.certificate_bits(); ++bit)
            w.write_bit(rng.coin());
          c = Certificate::from_writer(w);
        }
        EXPECT_FALSE(verify_labeled_assignment(scheme, inst, certs).all_accept)
            << entry.name;
      }
    }
  }
}

TEST(LabeledAutomata, UniqueLeaderKnownInstances) {
  LclTreeScheme scheme(standard_labeled_automata()[0]);
  Rng rng(9);
  Graph tree = make_path(7);
  assign_random_ids(tree, rng);
  LabeledTreeInstance one{tree, {0, 0, 0, 1, 0, 0, 0}};
  LabeledTreeInstance two{tree, {1, 0, 0, 1, 0, 0, 0}};
  LabeledTreeInstance zero{tree, {0, 0, 0, 0, 0, 0, 0}};
  EXPECT_TRUE(scheme.holds(one));
  EXPECT_FALSE(scheme.holds(two));
  EXPECT_FALSE(scheme.holds(zero));
  ASSERT_TRUE(scheme.assign(one).has_value());
  EXPECT_FALSE(scheme.assign(two).has_value());
}

TEST(LabeledAutomata, MarkedConnectedKnownInstances) {
  LclTreeScheme scheme(standard_labeled_automata()[2]);
  Rng rng(10);
  Graph tree = make_path(6);
  assign_random_ids(tree, rng);
  EXPECT_TRUE(scheme.holds({tree, {0, 1, 1, 1, 0, 0}}));
  EXPECT_FALSE(scheme.holds({tree, {1, 0, 1, 1, 0, 0}}));  // split component
  EXPECT_FALSE(scheme.holds({tree, {0, 0, 0, 0, 0, 0}}));  // empty
  EXPECT_TRUE(scheme.holds({tree, {1, 1, 1, 1, 1, 1}}));
}

TEST(LabeledAutomata, LabelsAreTrustedInputsNotCertificates) {
  // Flipping a *label* changes the instance (the oracle verdict), while
  // flipping a certificate bit must be caught by the verifier on the same
  // instance.
  LclTreeScheme scheme(standard_labeled_automata()[0]);
  Rng rng(11);
  Graph tree = make_star(6);
  assign_random_ids(tree, rng);
  LabeledTreeInstance inst{tree, {1, 0, 0, 0, 0, 0}};
  auto certs = scheme.assign(inst);
  ASSERT_TRUE(certs.has_value());
  ASSERT_TRUE(verify_labeled_assignment(scheme, inst, *certs).all_accept);
  for (Vertex v = 0; v < 6; ++v) {
    auto tampered = *certs;
    tampered[v].bytes[0] ^= 0x20;  // flip a state bit
    EXPECT_FALSE(verify_labeled_assignment(scheme, inst, tampered).all_accept) << v;
  }
}

}  // namespace
}  // namespace lcert
