#include <gtest/gtest.h>

#include "src/graph/generators.hpp"
#include "src/logic/ast.hpp"
#include "src/logic/ef_game.hpp"
#include "src/logic/eval.hpp"
#include "src/logic/formulas.hpp"
#include "src/logic/metrics.hpp"
#include "src/logic/modelcheck.hpp"
#include "src/logic/parser.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

TEST(Ast, BuildersAndRendering) {
  const Formula f = forall("x", exists("y", adj("x", "y") && !eq("x", "y")));
  EXPECT_EQ(f.to_string(), "forall x. (exists y. ((adj(x, y) & ~(x = y))))");
}

TEST(Ast, VariableKindEnforcement) {
  EXPECT_THROW(eq("X", "y"), std::invalid_argument);
  EXPECT_THROW(adj("x", "Y"), std::invalid_argument);
  EXPECT_THROW(mem("X", "Y"), std::invalid_argument);
  EXPECT_THROW(mem("x", "y"), std::invalid_argument);
  EXPECT_NO_THROW(mem("x", "Y"));
}

TEST(Parser, RoundTripsRendering) {
  const std::vector<Formula> formulas = {
      f_diameter_le_2(), f_triangle_free(), f_clique(), f_has_dominating_vertex(),
      f_two_colorable(), f_independent_dominating_set(),
  };
  for (const Formula& f : formulas) {
    const Formula parsed = parse_formula(f.to_string());
    EXPECT_EQ(parsed.to_string(), f.to_string());
  }
}

TEST(Parser, SyntaxVariants) {
  EXPECT_NO_THROW(parse_formula("forall x. exists y. adj(x,y) | x = y"));
  EXPECT_NO_THROW(parse_formula("exists X. forall x. x in X -> exists y. adj(x,y)"));
  EXPECT_NO_THROW(parse_formula("~(a = b) & (b = c <-> c = a)"));
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_formula(""), std::invalid_argument);
  EXPECT_THROW(parse_formula("forall x"), std::invalid_argument);
  EXPECT_THROW(parse_formula("adj(x)"), std::invalid_argument);
  EXPECT_THROW(parse_formula("x = y zzz"), std::invalid_argument);
  EXPECT_THROW(parse_formula("x in y"), std::invalid_argument);  // y is not a set
}

TEST(Eval, AtomsAndQuantifiers) {
  const Graph p3 = make_path(3);
  EXPECT_TRUE(evaluate(p3, parse_formula("exists x. exists y. adj(x, y)")));
  EXPECT_FALSE(evaluate(p3, parse_formula("forall x. forall y. (x = y | adj(x, y))")));
  EXPECT_TRUE(evaluate(make_complete(4), f_clique()));
  EXPECT_FALSE(evaluate(p3, f_clique()));
}

TEST(Eval, SetQuantifiers) {
  // 2-colorability distinguishes even and odd cycles.
  EXPECT_TRUE(evaluate(make_cycle(6), f_two_colorable()));
  EXPECT_FALSE(evaluate(make_cycle(5), f_two_colorable()));
  EXPECT_TRUE(evaluate(make_cycle(5), f_three_colorable()));
}

TEST(Eval, UnboundVariableThrows) {
  EXPECT_THROW(evaluate(make_path(2), parse_formula("x = x")), std::invalid_argument);
}

TEST(Eval, EnvironmentBindsFreeVariables) {
  Environment env;
  env.vertex_vars["x"] = 0;
  env.vertex_vars["y"] = 2;
  EXPECT_FALSE(evaluate(make_path(3), parse_formula("adj(x, y)"), env));
  env.vertex_vars["y"] = 1;
  EXPECT_TRUE(evaluate(make_path(3), parse_formula("adj(x, y)"), env));
}

TEST(Eval, FormulasAgreeWithDirectCheckers) {
  Rng rng(77);
  for (const auto& prop : standard_properties()) {
    for (int trial = 0; trial < 12; ++trial) {
      const std::size_t n = 2 + rng.index(7);
      const Graph g = make_random_connected(n, 0.2 + 0.1 * (trial % 6), rng);
      EXPECT_EQ(evaluate(g, prop.formula), prop.direct_check(g))
          << prop.name << " on\n"
          << g.to_string();
    }
  }
}

TEST(Metrics, QuantifierDepth) {
  EXPECT_EQ(quantifier_depth(f_diameter_le_2()), 3u);
  EXPECT_EQ(quantifier_depth(f_triangle_free()), 3u);
  EXPECT_EQ(quantifier_depth(f_clique()), 2u);
  EXPECT_EQ(quantifier_depth(f_at_most_one_vertex()), 2u);
  EXPECT_EQ(quantifier_depth(f_two_colorable()), 3u);
  EXPECT_EQ(quantifier_depth(f_at_least_k_vertices(4)), 4u);
}

TEST(Metrics, Alternations) {
  EXPECT_EQ(quantifier_alternations(f_triangle_free()), 0u);
  EXPECT_EQ(quantifier_alternations(f_has_dominating_vertex()), 1u);
  // diameter<=2: forall,forall,exists -> one alternation.
  EXPECT_EQ(quantifier_alternations(f_diameter_le_2()), 1u);
}

TEST(Metrics, ExistentialFragment) {
  EXPECT_TRUE(is_existential(f_at_least_k_vertices(3)));
  EXPECT_TRUE(is_existential(f_independent_set_of_size(3)));
  EXPECT_TRUE(is_existential(f_has_path_subgraph(4)));
  EXPECT_FALSE(is_existential(f_clique()));
  // Double negation of an existential stays existential.
  EXPECT_TRUE(is_existential(!!f_at_least_k_vertices(2)));
  // Negated universal becomes existential.
  EXPECT_TRUE(is_existential(!f_clique()));
}

TEST(Metrics, SetDetection) {
  EXPECT_TRUE(uses_set_quantifiers(f_two_colorable()));
  EXPECT_FALSE(uses_set_quantifiers(f_triangle_free()));
}

TEST(Metrics, FreeVariablesAndSentences) {
  EXPECT_TRUE(is_sentence(f_diameter_le_2()));
  const Formula open = adj("x", "y") && mem("x", "S");
  const auto fv = free_variables(open);
  EXPECT_EQ(fv, (std::vector<std::string>{"x", "y", "S"}));
  EXPECT_FALSE(is_sentence(open));
}

TEST(Metrics, NnfPreservesSemantics) {
  Rng rng(78);
  const std::vector<Formula> formulas = {
      f_diameter_le_2(), !f_diameter_le_2(), f_two_colorable(), !f_two_colorable(),
      !(f_clique() || !f_triangle_free()),
  };
  for (const Formula& f : formulas) {
    const Formula g = to_nnf(f);
    for (int trial = 0; trial < 8; ++trial) {
      const Graph graph = make_random_connected(2 + rng.index(5), 0.4, rng);
      EXPECT_EQ(evaluate(graph, f), evaluate(graph, g)) << f.to_string();
    }
  }
}

TEST(Metrics, PrenexExistentialPreservesSemantics) {
  Rng rng(79);
  const std::vector<Formula> formulas = {
      f_at_least_k_vertices(3),
      f_independent_set_of_size(2),
      f_has_path_subgraph(3),
      exists("x", adj("x", "x") || exists("y", adj("x", "y"))),
      // Shadowing: inner x rebinds.
      exists("x", exists("y", adj("x", "y")) && exists("x", eq("x", "x"))),
  };
  for (const Formula& f : formulas) {
    const auto pre = prenex_existential(f);
    // Rebuild the prenex sentence and compare semantics.
    Formula rebuilt = pre.matrix;
    for (std::size_t i = pre.variables.size(); i-- > 0;)
      rebuilt = exists(pre.variables[i], rebuilt);
    for (int trial = 0; trial < 8; ++trial) {
      const Graph graph = make_random_connected(2 + rng.index(5), 0.4, rng);
      EXPECT_EQ(evaluate(graph, f), evaluate(graph, rebuilt)) << f.to_string();
    }
  }
}

TEST(Metrics, PrenexRejectsNonExistential) {
  EXPECT_THROW(prenex_existential(f_clique()), std::invalid_argument);
  EXPECT_THROW(prenex_existential(f_two_colorable()), std::invalid_argument);
  EXPECT_THROW(prenex_existential(adj("x", "y")), std::invalid_argument);  // open
}

TEST(ModelCheck, AgreesWithBruteForceOnSmallInstances) {
  Rng rng(90);
  const auto properties = standard_properties();
  for (int trial = 0; trial < 15; ++trial) {
    const auto inst = make_bounded_treedepth_graph(6 + rng.index(10), 3, 0.4, rng);
    for (const auto& prop : properties) {
      if (quantifier_depth(prop.formula) > 3) continue;
      const bool is_mso = uses_set_quantifiers(prop.formula);
      if (is_mso && inst.graph.vertex_count() > 14) continue;
      const std::size_t threshold =
          is_mso ? (std::size_t{1} << quantifier_depth(prop.formula)) : 0;
      const bool via_kernel = modelcheck_bounded_treedepth(
          inst.graph, prop.formula, inst.elimination_tree, threshold);
      EXPECT_EQ(via_kernel, evaluate(inst.graph, prop.formula))
          << prop.name << "\n"
          << inst.graph.to_string();
    }
  }
}

TEST(ModelCheck, ScalesBeyondBruteForce) {
  // FO depth 3 on n = 20000: brute force would take ~10^12 atom checks; the
  // kernel route finishes instantly and the kernel stays small.
  Rng rng(91);
  const auto inst = make_bounded_treedepth_graph(20000, 3, 0.25, rng);
  ModelCheckStats stats;
  const bool result = modelcheck_bounded_treedepth(inst.graph, f_triangle_free(),
                                                   inst.elimination_tree, 0, &stats);
  (void)result;
  EXPECT_LE(stats.kernel_size, 200u);
  EXPECT_EQ(stats.reduction_threshold, 3u);
}

TEST(ModelCheck, InputValidation) {
  const Graph g = make_path(4);
  EXPECT_THROW(modelcheck_bounded_treedepth(g, adj("x", "y")), std::invalid_argument);
  EXPECT_THROW(modelcheck_bounded_treedepth(g, f_two_colorable()),
               std::invalid_argument);  // MSO without explicit threshold
  EXPECT_NO_THROW(modelcheck_bounded_treedepth(g, f_two_colorable(), std::nullopt, 8));
  // An invalid model is rejected.
  EXPECT_THROW(modelcheck_bounded_treedepth(g, f_triangle_free(),
                                            RootedTree({RootedTree::kNoParent, 0, 0, 0})),
               std::invalid_argument);
}

TEST(EfGame, PathsOfDifferentLengthsSmallDepth) {
  // Classic: P_2 and P_3 are distinguished at depth 2 but not 1.
  EXPECT_TRUE(ef_equivalent(make_path(2), make_path(3), 1));
  EXPECT_FALSE(ef_equivalent(make_path(2), make_path(3), 2));
}

TEST(EfGame, LongPathsNeedDeepGames) {
  // P_6 vs P_7: indistinguishable at depth 2.
  EXPECT_TRUE(ef_equivalent(make_path(6), make_path(7), 2));
  EXPECT_FALSE(ef_equivalent(make_path(6), make_path(7), 4));
}

TEST(EfGame, IsomorphicGraphsAreEquivalent) {
  Rng rng(80);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.index(5);
    const Graph g = make_random_connected(n, 0.4, rng);
    const auto perm = rng.permutation(n);
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (auto [u, v] : g.edges()) edges.emplace_back(perm[u], perm[v]);
    const Graph h(n, edges);
    EXPECT_TRUE(ef_equivalent(g, h, 3));
  }
}

TEST(EfGame, EquivalenceIsConsistentWithFormulas) {
  // If Duplicator wins at depth k, no depth-k formula in our library can
  // distinguish the two graphs.
  Rng rng(81);
  const auto properties = standard_properties();
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = make_random_connected(2 + rng.index(5), 0.4, rng);
    const Graph h = make_random_connected(2 + rng.index(5), 0.4, rng);
    for (const auto& prop : properties) {
      if (uses_set_quantifiers(prop.formula)) continue;  // EF is FO-only
      const std::size_t k = quantifier_depth(prop.formula);
      if (ef_equivalent(g, h, k)) {
        EXPECT_EQ(evaluate(g, prop.formula), evaluate(h, prop.formula))
            << prop.name << "\n"
            << g.to_string() << h.to_string();
      }
    }
  }
}

TEST(EfGame, DistinguishingDepth) {
  EXPECT_EQ(distinguishing_depth(make_path(2), make_path(3), 4), 2u);
  EXPECT_EQ(distinguishing_depth(make_path(3), make_path(3), 4), 0u);
  // Clique vs path of same size: depth 2 (two adjacent/non-adjacent picks).
  EXPECT_EQ(distinguishing_depth(make_complete(4), make_path(4), 4), 2u);
}

}  // namespace
}  // namespace lcert
