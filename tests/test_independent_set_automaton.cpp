// aut_independent_set_ge: the coupled-capped-sum automaton, cross-validated
// against (a) a direct tree DP for the independence number and (b) the MSO
// evaluator on the existential formula, plus the Theorem 2.2 scheme on top.
#include <gtest/gtest.h>

#include "src/automata/library.hpp"
#include "src/cert/audit.hpp"
#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/logic/eval.hpp"
#include "src/logic/formulas.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/util/rng.hpp"

namespace lcert {
namespace {

// Independence number of a tree by the classic DP.
std::size_t tree_alpha(const Graph& g) {
  const RootedTree t = RootedTree::from_graph(g, 0);
  const auto order = t.preorder();
  std::vector<std::size_t> with(g.vertex_count()), without(g.vertex_count());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t v = *it;
    with[v] = 1;
    without[v] = 0;
    for (std::size_t ch : t.children(v)) {
      with[v] += without[ch];
      without[v] += std::max(with[ch], without[ch]);
    }
  }
  return std::max(with[t.root()], without[t.root()]);
}

bool alpha_oracle_3(const Graph& g) { return tree_alpha(g) >= 3; }
std::vector<Vertex> all_roots(const Graph& g) {
  std::vector<Vertex> out(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) out[v] = v;
  return out;
}

TEST(IndependentSetAutomaton, KnownSmallTrees) {
  const UOPAutomaton a2 = aut_independent_set_ge(2);
  // alpha >= 2 iff the tree has >= 3 vertices (two leaves of a tree with
  // n >= 3 are never adjacent) or two isolated... n=2: alpha = 1.
  EXPECT_FALSE(accepts(a2, RootedTree::from_graph(Graph(1, {}), 0)));
  EXPECT_FALSE(accepts(a2, RootedTree::from_graph(make_path(2), 0)));
  EXPECT_TRUE(accepts(a2, RootedTree::from_graph(make_path(3), 0)));
  EXPECT_TRUE(accepts(a2, RootedTree::from_graph(make_star(5), 1)));
}

TEST(IndependentSetAutomaton, MatchesDpOnRandomTrees) {
  const UOPAutomaton a3 = aut_independent_set_ge(3);
  Rng rng(1);
  for (int trial = 0; trial < 80; ++trial) {
    const Graph tree = make_random_tree(1 + rng.index(9), rng);
    const bool expected = tree_alpha(tree) >= 3;
    // Root-independence: every root must agree (alpha is a graph property).
    for (Vertex root = 0; root < tree.vertex_count(); ++root) {
      EXPECT_EQ(accepts(a3, RootedTree::from_graph(tree, root)), expected)
          << "root " << root << "\n"
          << tree.to_string();
    }
  }
}

TEST(IndependentSetAutomaton, MatchesMsoFormulaOnSmallTrees) {
  const UOPAutomaton a3 = aut_independent_set_ge(3);
  const Formula phi = f_independent_set_of_size(3);
  Rng rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph tree = make_random_tree(1 + rng.index(8), rng);
    EXPECT_EQ(accepts(a3, RootedTree::from_graph(tree, 0)), evaluate(tree, phi))
        << tree.to_string();
  }
}

TEST(IndependentSetAutomaton, SchemeOnTopIsCompleteAndSound) {
  NamedAutomaton entry{"alpha>=3", aut_independent_set_ge(3), &alpha_oracle_3, &all_roots};
  MsoTreeScheme scheme(entry);
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    Graph tree = make_random_tree(2 + rng.index(10), rng);
    assign_random_ids(tree, rng);
    if (scheme.holds(tree)) {
      require_complete(scheme, tree);
      EXPECT_LE(certified_size_bits(scheme, tree), scheme.certificate_bits());
    } else {
      const auto forged = attack_soundness(scheme, tree, nullptr, rng,
                                           {.random_trials = 60, .mutation_trials = 0});
      EXPECT_FALSE(forged.has_value());
    }
  }
}

TEST(IndependentSetAutomaton, RunsCarryConsistentPairs) {
  // The state of the root in an accepting run encodes (capped) alpha values;
  // cross-check the run's root state against the DP.
  const std::size_t c = 3;
  const UOPAutomaton a = aut_independent_set_ge(c);
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph tree = make_random_tree(3 + rng.index(8), rng);
    if (tree_alpha(tree) < c) continue;
    const RootedTree t = RootedTree::from_graph(tree, 0);
    const auto run = find_accepting_run(a, t);
    ASSERT_TRUE(run.has_value());
    EXPECT_TRUE(is_accepting_run(a, t, *run));
    EXPECT_TRUE(a.accepting[(*run)[t.root()]]);
  }
}

}  // namespace
}  // namespace lcert
