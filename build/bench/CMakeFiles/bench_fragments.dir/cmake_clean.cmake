file(REMOVE_RECURSE
  "CMakeFiles/bench_fragments.dir/bench_fragments.cpp.o"
  "CMakeFiles/bench_fragments.dir/bench_fragments.cpp.o.d"
  "bench_fragments"
  "bench_fragments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fragments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
