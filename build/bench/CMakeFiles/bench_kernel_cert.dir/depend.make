# Empty dependencies file for bench_kernel_cert.
# This may be replaced when dependencies are built.
