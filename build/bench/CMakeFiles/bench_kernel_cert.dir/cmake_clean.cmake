file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_cert.dir/bench_kernel_cert.cpp.o"
  "CMakeFiles/bench_kernel_cert.dir/bench_kernel_cert.cpp.o.d"
  "bench_kernel_cert"
  "bench_kernel_cert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_cert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
