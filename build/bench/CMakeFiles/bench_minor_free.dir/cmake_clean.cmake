file(REMOVE_RECURSE
  "CMakeFiles/bench_minor_free.dir/bench_minor_free.cpp.o"
  "CMakeFiles/bench_minor_free.dir/bench_minor_free.cpp.o.d"
  "bench_minor_free"
  "bench_minor_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minor_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
