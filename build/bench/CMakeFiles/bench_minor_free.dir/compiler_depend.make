# Empty compiler generated dependencies file for bench_minor_free.
# This may be replaced when dependencies are built.
