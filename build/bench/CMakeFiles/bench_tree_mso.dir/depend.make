# Empty dependencies file for bench_tree_mso.
# This may be replaced when dependencies are built.
