file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_mso.dir/bench_tree_mso.cpp.o"
  "CMakeFiles/bench_tree_mso.dir/bench_tree_mso.cpp.o.d"
  "bench_tree_mso"
  "bench_tree_mso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_mso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
