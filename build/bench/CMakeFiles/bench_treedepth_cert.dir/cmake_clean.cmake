file(REMOVE_RECURSE
  "CMakeFiles/bench_treedepth_cert.dir/bench_treedepth_cert.cpp.o"
  "CMakeFiles/bench_treedepth_cert.dir/bench_treedepth_cert.cpp.o.d"
  "bench_treedepth_cert"
  "bench_treedepth_cert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_treedepth_cert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
