# Empty dependencies file for bench_treedepth_cert.
# This may be replaced when dependencies are built.
