# Empty compiler generated dependencies file for bench_automorphism_lb.
# This may be replaced when dependencies are built.
