file(REMOVE_RECURSE
  "CMakeFiles/bench_automorphism_lb.dir/bench_automorphism_lb.cpp.o"
  "CMakeFiles/bench_automorphism_lb.dir/bench_automorphism_lb.cpp.o.d"
  "bench_automorphism_lb"
  "bench_automorphism_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_automorphism_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
