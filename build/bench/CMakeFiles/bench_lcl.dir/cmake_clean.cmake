file(REMOVE_RECURSE
  "CMakeFiles/bench_lcl.dir/bench_lcl.cpp.o"
  "CMakeFiles/bench_lcl.dir/bench_lcl.cpp.o.d"
  "bench_lcl"
  "bench_lcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
