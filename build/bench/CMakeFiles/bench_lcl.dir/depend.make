# Empty dependencies file for bench_lcl.
# This may be replaced when dependencies are built.
