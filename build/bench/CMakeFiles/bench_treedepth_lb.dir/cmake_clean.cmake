file(REMOVE_RECURSE
  "CMakeFiles/bench_treedepth_lb.dir/bench_treedepth_lb.cpp.o"
  "CMakeFiles/bench_treedepth_lb.dir/bench_treedepth_lb.cpp.o.d"
  "bench_treedepth_lb"
  "bench_treedepth_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_treedepth_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
