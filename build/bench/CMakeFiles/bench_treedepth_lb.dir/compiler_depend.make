# Empty compiler generated dependencies file for bench_treedepth_lb.
# This may be replaced when dependencies are built.
