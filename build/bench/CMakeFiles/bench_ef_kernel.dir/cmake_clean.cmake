file(REMOVE_RECURSE
  "CMakeFiles/bench_ef_kernel.dir/bench_ef_kernel.cpp.o"
  "CMakeFiles/bench_ef_kernel.dir/bench_ef_kernel.cpp.o.d"
  "bench_ef_kernel"
  "bench_ef_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ef_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
