# Empty compiler generated dependencies file for bench_ef_kernel.
# This may be replaced when dependencies are built.
