# Empty dependencies file for bench_modelcheck.
# This may be replaced when dependencies are built.
