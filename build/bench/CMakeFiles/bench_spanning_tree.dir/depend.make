# Empty dependencies file for bench_spanning_tree.
# This may be replaced when dependencies are built.
