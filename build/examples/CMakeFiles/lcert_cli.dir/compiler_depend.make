# Empty compiler generated dependencies file for lcert_cli.
# This may be replaced when dependencies are built.
