file(REMOVE_RECURSE
  "CMakeFiles/lcert_cli.dir/lcert_cli.cpp.o"
  "CMakeFiles/lcert_cli.dir/lcert_cli.cpp.o.d"
  "lcert_cli"
  "lcert_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcert_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
