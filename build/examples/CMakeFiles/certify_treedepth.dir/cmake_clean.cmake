file(REMOVE_RECURSE
  "CMakeFiles/certify_treedepth.dir/certify_treedepth.cpp.o"
  "CMakeFiles/certify_treedepth.dir/certify_treedepth.cpp.o.d"
  "certify_treedepth"
  "certify_treedepth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certify_treedepth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
