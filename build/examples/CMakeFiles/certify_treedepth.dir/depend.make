# Empty dependencies file for certify_treedepth.
# This may be replaced when dependencies are built.
