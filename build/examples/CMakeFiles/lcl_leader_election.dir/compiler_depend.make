# Empty compiler generated dependencies file for lcl_leader_election.
# This may be replaced when dependencies are built.
