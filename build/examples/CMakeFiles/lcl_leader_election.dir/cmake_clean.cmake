file(REMOVE_RECURSE
  "CMakeFiles/lcl_leader_election.dir/lcl_leader_election.cpp.o"
  "CMakeFiles/lcl_leader_election.dir/lcl_leader_election.cpp.o.d"
  "lcl_leader_election"
  "lcl_leader_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcl_leader_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
