file(REMOVE_RECURSE
  "CMakeFiles/automata_playground.dir/automata_playground.cpp.o"
  "CMakeFiles/automata_playground.dir/automata_playground.cpp.o.d"
  "automata_playground"
  "automata_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
