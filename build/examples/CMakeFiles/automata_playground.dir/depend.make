# Empty dependencies file for automata_playground.
# This may be replaced when dependencies are built.
