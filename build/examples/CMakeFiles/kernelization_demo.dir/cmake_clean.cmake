file(REMOVE_RECURSE
  "CMakeFiles/kernelization_demo.dir/kernelization_demo.cpp.o"
  "CMakeFiles/kernelization_demo.dir/kernelization_demo.cpp.o.d"
  "kernelization_demo"
  "kernelization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernelization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
