# Empty dependencies file for kernelization_demo.
# This may be replaced when dependencies are built.
