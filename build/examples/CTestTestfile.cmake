# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_certify_treedepth "/root/repo/build/examples/certify_treedepth")
set_tests_properties(example_certify_treedepth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kernelization_demo "/root/repo/build/examples/kernelization_demo")
set_tests_properties(example_kernelization_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lower_bound_demo "/root/repo/build/examples/lower_bound_demo")
set_tests_properties(example_lower_bound_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_automata_playground "/root/repo/build/examples/automata_playground")
set_tests_properties(example_automata_playground PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lcl_leader_election "/root/repo/build/examples/lcl_leader_election")
set_tests_properties(example_lcl_leader_election PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_list "/root/repo/build/examples/lcert_cli" "list")
set_tests_properties(example_cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_demo "/root/repo/build/examples/lcert_cli" "demo" "vertex-parity" "16")
set_tests_properties(example_cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
