# Empty dependencies file for lcert_tests.
# This may be replaced when dependencies are built.
