
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_automata.cpp" "tests/CMakeFiles/lcert_tests.dir/test_automata.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_automata.cpp.o.d"
  "/root/repo/tests/test_bignum.cpp" "tests/CMakeFiles/lcert_tests.dir/test_bignum.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_bignum.cpp.o.d"
  "/root/repo/tests/test_bitio.cpp" "tests/CMakeFiles/lcert_tests.dir/test_bitio.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_bitio.cpp.o.d"
  "/root/repo/tests/test_cert_framework.cpp" "tests/CMakeFiles/lcert_tests.dir/test_cert_framework.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_cert_framework.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/lcert_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_flow.cpp" "tests/CMakeFiles/lcert_tests.dir/test_flow.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_flow.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/lcert_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_independent_set_automaton.cpp" "tests/CMakeFiles/lcert_tests.dir/test_independent_set_automaton.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_independent_set_automaton.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/lcert_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_kernel.cpp" "tests/CMakeFiles/lcert_tests.dir/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_kernel.cpp.o.d"
  "/root/repo/tests/test_logic.cpp" "tests/CMakeFiles/lcert_tests.dir/test_logic.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_logic.cpp.o.d"
  "/root/repo/tests/test_lowerbounds.cpp" "tests/CMakeFiles/lcert_tests.dir/test_lowerbounds.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_lowerbounds.cpp.o.d"
  "/root/repo/tests/test_registry_sweep.cpp" "tests/CMakeFiles/lcert_tests.dir/test_registry_sweep.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_registry_sweep.cpp.o.d"
  "/root/repo/tests/test_schemes_advanced.cpp" "tests/CMakeFiles/lcert_tests.dir/test_schemes_advanced.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_schemes_advanced.cpp.o.d"
  "/root/repo/tests/test_schemes_basic.cpp" "tests/CMakeFiles/lcert_tests.dir/test_schemes_basic.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_schemes_basic.cpp.o.d"
  "/root/repo/tests/test_treedepth.cpp" "tests/CMakeFiles/lcert_tests.dir/test_treedepth.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_treedepth.cpp.o.d"
  "/root/repo/tests/test_treedepth_core.cpp" "tests/CMakeFiles/lcert_tests.dir/test_treedepth_core.cpp.o" "gcc" "tests/CMakeFiles/lcert_tests.dir/test_treedepth_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcert.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
