
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/library.cpp" "src/CMakeFiles/lcert.dir/automata/library.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/automata/library.cpp.o.d"
  "/root/repo/src/automata/presburger.cpp" "src/CMakeFiles/lcert.dir/automata/presburger.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/automata/presburger.cpp.o.d"
  "/root/repo/src/automata/uop_automaton.cpp" "src/CMakeFiles/lcert.dir/automata/uop_automaton.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/automata/uop_automaton.cpp.o.d"
  "/root/repo/src/cert/audit.cpp" "src/CMakeFiles/lcert.dir/cert/audit.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/cert/audit.cpp.o.d"
  "/root/repo/src/cert/ball.cpp" "src/CMakeFiles/lcert.dir/cert/ball.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/cert/ball.cpp.o.d"
  "/root/repo/src/cert/engine.cpp" "src/CMakeFiles/lcert.dir/cert/engine.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/cert/engine.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/CMakeFiles/lcert.dir/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/graph/connectivity.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/lcert.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/lcert.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/lcert.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/minors.cpp" "src/CMakeFiles/lcert.dir/graph/minors.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/graph/minors.cpp.o.d"
  "/root/repo/src/graph/rooted_tree.cpp" "src/CMakeFiles/lcert.dir/graph/rooted_tree.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/graph/rooted_tree.cpp.o.d"
  "/root/repo/src/graph/tree_iso.cpp" "src/CMakeFiles/lcert.dir/graph/tree_iso.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/graph/tree_iso.cpp.o.d"
  "/root/repo/src/kernel/reduce.cpp" "src/CMakeFiles/lcert.dir/kernel/reduce.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/kernel/reduce.cpp.o.d"
  "/root/repo/src/kernel/types.cpp" "src/CMakeFiles/lcert.dir/kernel/types.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/kernel/types.cpp.o.d"
  "/root/repo/src/lcl/labeled.cpp" "src/CMakeFiles/lcert.dir/lcl/labeled.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/lcl/labeled.cpp.o.d"
  "/root/repo/src/lcl/lcl_library.cpp" "src/CMakeFiles/lcert.dir/lcl/lcl_library.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/lcl/lcl_library.cpp.o.d"
  "/root/repo/src/lcl/lcl_scheme.cpp" "src/CMakeFiles/lcert.dir/lcl/lcl_scheme.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/lcl/lcl_scheme.cpp.o.d"
  "/root/repo/src/logic/ast.cpp" "src/CMakeFiles/lcert.dir/logic/ast.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/logic/ast.cpp.o.d"
  "/root/repo/src/logic/ef_game.cpp" "src/CMakeFiles/lcert.dir/logic/ef_game.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/logic/ef_game.cpp.o.d"
  "/root/repo/src/logic/eval.cpp" "src/CMakeFiles/lcert.dir/logic/eval.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/logic/eval.cpp.o.d"
  "/root/repo/src/logic/formulas.cpp" "src/CMakeFiles/lcert.dir/logic/formulas.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/logic/formulas.cpp.o.d"
  "/root/repo/src/logic/metrics.cpp" "src/CMakeFiles/lcert.dir/logic/metrics.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/logic/metrics.cpp.o.d"
  "/root/repo/src/logic/modelcheck.cpp" "src/CMakeFiles/lcert.dir/logic/modelcheck.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/logic/modelcheck.cpp.o.d"
  "/root/repo/src/logic/parser.cpp" "src/CMakeFiles/lcert.dir/logic/parser.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/logic/parser.cpp.o.d"
  "/root/repo/src/lowerbounds/constructions.cpp" "src/CMakeFiles/lcert.dir/lowerbounds/constructions.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/lowerbounds/constructions.cpp.o.d"
  "/root/repo/src/lowerbounds/framework.cpp" "src/CMakeFiles/lcert.dir/lowerbounds/framework.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/lowerbounds/framework.cpp.o.d"
  "/root/repo/src/lowerbounds/tree_enumeration.cpp" "src/CMakeFiles/lcert.dir/lowerbounds/tree_enumeration.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/lowerbounds/tree_enumeration.cpp.o.d"
  "/root/repo/src/schemes/automorphism_scheme.cpp" "src/CMakeFiles/lcert.dir/schemes/automorphism_scheme.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/automorphism_scheme.cpp.o.d"
  "/root/repo/src/schemes/depth2_fo.cpp" "src/CMakeFiles/lcert.dir/schemes/depth2_fo.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/depth2_fo.cpp.o.d"
  "/root/repo/src/schemes/existential_fo.cpp" "src/CMakeFiles/lcert.dir/schemes/existential_fo.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/existential_fo.cpp.o.d"
  "/root/repo/src/schemes/kernel_core.cpp" "src/CMakeFiles/lcert.dir/schemes/kernel_core.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/kernel_core.cpp.o.d"
  "/root/repo/src/schemes/kernel_scheme.cpp" "src/CMakeFiles/lcert.dir/schemes/kernel_scheme.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/kernel_scheme.cpp.o.d"
  "/root/repo/src/schemes/minor_free.cpp" "src/CMakeFiles/lcert.dir/schemes/minor_free.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/minor_free.cpp.o.d"
  "/root/repo/src/schemes/mso_tree.cpp" "src/CMakeFiles/lcert.dir/schemes/mso_tree.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/mso_tree.cpp.o.d"
  "/root/repo/src/schemes/registry.cpp" "src/CMakeFiles/lcert.dir/schemes/registry.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/registry.cpp.o.d"
  "/root/repo/src/schemes/spanning_tree.cpp" "src/CMakeFiles/lcert.dir/schemes/spanning_tree.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/spanning_tree.cpp.o.d"
  "/root/repo/src/schemes/tree_depth_bounded.cpp" "src/CMakeFiles/lcert.dir/schemes/tree_depth_bounded.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/tree_depth_bounded.cpp.o.d"
  "/root/repo/src/schemes/tree_diameter.cpp" "src/CMakeFiles/lcert.dir/schemes/tree_diameter.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/tree_diameter.cpp.o.d"
  "/root/repo/src/schemes/treedepth_core.cpp" "src/CMakeFiles/lcert.dir/schemes/treedepth_core.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/treedepth_core.cpp.o.d"
  "/root/repo/src/schemes/treedepth_scheme.cpp" "src/CMakeFiles/lcert.dir/schemes/treedepth_scheme.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/treedepth_scheme.cpp.o.d"
  "/root/repo/src/schemes/universal.cpp" "src/CMakeFiles/lcert.dir/schemes/universal.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/schemes/universal.cpp.o.d"
  "/root/repo/src/treedepth/cops_robber.cpp" "src/CMakeFiles/lcert.dir/treedepth/cops_robber.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/treedepth/cops_robber.cpp.o.d"
  "/root/repo/src/treedepth/elimination.cpp" "src/CMakeFiles/lcert.dir/treedepth/elimination.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/treedepth/elimination.cpp.o.d"
  "/root/repo/src/treedepth/exact.cpp" "src/CMakeFiles/lcert.dir/treedepth/exact.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/treedepth/exact.cpp.o.d"
  "/root/repo/src/treedepth/heuristic.cpp" "src/CMakeFiles/lcert.dir/treedepth/heuristic.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/treedepth/heuristic.cpp.o.d"
  "/root/repo/src/util/bignum.cpp" "src/CMakeFiles/lcert.dir/util/bignum.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/util/bignum.cpp.o.d"
  "/root/repo/src/util/bitio.cpp" "src/CMakeFiles/lcert.dir/util/bitio.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/util/bitio.cpp.o.d"
  "/root/repo/src/util/flow.cpp" "src/CMakeFiles/lcert.dir/util/flow.cpp.o" "gcc" "src/CMakeFiles/lcert.dir/util/flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
