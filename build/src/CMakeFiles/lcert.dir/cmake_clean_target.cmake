file(REMOVE_RECURSE
  "liblcert.a"
)
