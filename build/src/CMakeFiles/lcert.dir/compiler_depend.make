# Empty compiler generated dependencies file for lcert.
# This may be replaced when dependencies are built.
